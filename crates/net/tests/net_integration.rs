//! Integration tests: the TCP server under real concurrent clients.
//!
//! The scenarios the admission/fairness design exists for: several
//! clients on mixed lanes with one of them flooding, full queues
//! rejecting with a backoff hint, and — the invariant that matters most —
//! every verdict under load identical to a solo run of the same job.

use std::collections::HashMap;
use std::time::Duration;

use parsweep_net::{AdmissionConfig, NetClient, NetConfig, NetServer};
use parsweep_sat::Verdict;
use parsweep_svc::frontend::demo_miter;
use parsweep_svc::jsonl::{get, JsonValue};
use parsweep_svc::{CecService, Lane, SvcConfig};

/// Solo ground truth: the same demo job through a bare service.
fn solo_verdict(width: usize, corrupt: bool) -> &'static str {
    let svc = CecService::new(SvcConfig {
        workers: 1,
        ..SvcConfig::default()
    });
    let id = svc.submit(demo_miter("adder", width, corrupt).unwrap());
    match svc.wait(id).unwrap().verdict {
        Verdict::Equivalent => "equivalent",
        Verdict::NotEquivalent(_) => "not-equivalent",
        Verdict::Undecided => "undecided",
    }
}

#[test]
fn concurrent_mixed_lane_clients_match_solo_verdicts() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            svc: SvcConfig {
                workers: 1,
                fuse_threshold: 64,
                ..SvcConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 2,
                queue_capacity: 128,
                per_client_max: 2,
            },
            max_connections: 16,
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // 4 concurrent clients: two interactive, one batch, one *flooding*
    // batch client pipelining far more jobs than the budget. Widths vary
    // per client and corruption alternates, so verdicts differ.
    let handles: Vec<_> = (0..4u64)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let (lane, jobs) = match c {
                    0 | 1 => (Lane::Interactive, 6),
                    2 => (Lane::Batch, 6),
                    _ => (Lane::Batch, 40), // the flooder
                };
                let mut submitted = Vec::new();
                for i in 0..jobs {
                    let width = 2 + ((c as usize + i) % 3);
                    let corrupt = i % 2 == 1;
                    // Pipeline: submit everything first, collect results
                    // after. Queued admissions still deliver results.
                    let reply = client
                        .submit_demo(width, lane, corrupt, None)
                        .expect("submit");
                    assert!(
                        !reply.rejected,
                        "queue_capacity 128 fits this whole test's traffic"
                    );
                    submitted.push((reply.request_id, width, corrupt));
                }
                let mut verdicts = Vec::new();
                for (request_id, width, corrupt) in submitted {
                    let event = client.wait_result(request_id).expect("result");
                    let verdict = get(&event, "verdict")
                        .and_then(JsonValue::as_str)
                        .expect("verdict field")
                        .to_owned();
                    verdicts.push((width, corrupt, verdict));
                }
                verdicts
            })
        })
        .collect();

    let mut expected: HashMap<(usize, bool), String> = HashMap::new();
    for width in 2..=4 {
        for corrupt in [false, true] {
            expected.insert((width, corrupt), solo_verdict(width, corrupt).to_owned());
        }
    }
    for handle in handles {
        for (width, corrupt, verdict) in handle.join().unwrap() {
            assert_eq!(
                &verdict,
                expected.get(&(width, corrupt)).unwrap(),
                "verdict under load diverged from solo run (width {width}, corrupt {corrupt})"
            );
        }
    }
    let adm = server.admission_stats();
    assert!(adm.queued > 0, "budget 2 must have queued some of 58 jobs");
    server.stop();
    let stats = server.svc().stats();
    assert_eq!(stats.jobs_completed, 58, "stats: {stats:?}");
    assert!(stats.fused_shards > 0, "tiny adder cones must fuse");
}

#[test]
fn full_queue_rejects_with_retry_hint() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            svc: SvcConfig {
                workers: 1,
                ..SvcConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 1,
                queue_capacity: 2,
                per_client_max: 1,
            },
            max_connections: 4,
        },
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    // Give the single worker slow-ish jobs, then fill the queue. Every
    // width is distinct: identical submissions would settle from the job
    // memo without ever occupying the queue.
    let mut rejected = None;
    for i in 0..12 {
        let reply = client
            .submit_demo(8 + i, Lane::Interactive, false, None)
            .unwrap();
        if reply.rejected {
            rejected = Some(reply);
            break;
        }
    }
    let reply = rejected.expect("queue of 2 must overflow within 12 submits");
    assert!(
        reply.retry_after_ms.expect("hint present") >= 1,
        "retry_after_ms must be a usable backoff"
    );
    // Back off as told, drain, and verify the service still answers.
    client.drain().unwrap();
    let verdict = client
        .check_demo(4, Lane::Interactive, true)
        .unwrap()
        .expect("admitted after drain");
    assert_eq!(verdict, "not-equivalent");
    server.stop();
}

#[test]
fn flooded_batch_lane_never_starves_interactive() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            svc: SvcConfig {
                workers: 1,
                ..SvcConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 1,
                queue_capacity: 256,
                per_client_max: 1,
            },
            max_connections: 8,
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // The flooder queues a deep batch backlog first — every job a
    // *different* width, so none settles from the cache and the backlog
    // represents real work.
    let mut flooder = NetClient::connect(addr).unwrap();
    let mut flood_ids = Vec::new();
    for i in 0..20 {
        let reply = flooder
            .submit_demo(5 + i, Lane::Batch, false, None)
            .unwrap();
        assert!(!reply.rejected);
        flood_ids.push(reply.request_id);
    }
    // An interactive client arrives *behind* the backlog; its jobs must
    // not wait for the whole flood to finish.
    let mut interactive = NetClient::connect(addr).unwrap();
    for _ in 0..5 {
        let verdict = interactive
            .check_demo(3, Lane::Interactive, false)
            .unwrap()
            .expect("interactive job admitted");
        assert_eq!(verdict, "equivalent");
    }
    // Interactive finished its 5 round trips; the flood must still be
    // partly pending — i.e. interactive overtook queued batch work.
    let stats = server.svc().stats();
    assert!(
        stats.jobs_completed < 25,
        "interactive overtook the flood; completed: {}",
        stats.jobs_completed
    );
    for id in flood_ids {
        let event = flooder.wait_result(id).unwrap();
        assert_eq!(
            get(&event, "verdict").and_then(JsonValue::as_str),
            Some("equivalent")
        );
    }
    server.stop();
}

#[test]
fn disconnect_purges_queued_jobs_and_frees_the_server() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            svc: SvcConfig {
                workers: 1,
                ..SvcConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 1,
                queue_capacity: 64,
                per_client_max: 1,
            },
            max_connections: 8,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    {
        let mut vanishing = NetClient::connect(addr).unwrap();
        // Distinct widths: a backlog of identical jobs would settle
        // instantly from the job memo instead of staying queued.
        for i in 0..10 {
            vanishing
                .submit_demo(6 + i, Lane::Batch, false, None)
                .unwrap();
        }
        // Drop without reading results: connection closes mid-backlog.
    }
    // A fresh client gets service promptly; the dead client's queue is
    // purged rather than ground through.
    let mut client = NetClient::connect(addr).unwrap();
    let verdict = client
        .check_demo(2, Lane::Interactive, false)
        .unwrap()
        .expect("admitted");
    assert_eq!(verdict, "equivalent");
    server.stop();
    assert!(
        server.svc().stats().jobs_completed < 11,
        "purge must have dropped most of the vanished client's backlog"
    );
}

#[test]
fn deadline_jobs_still_cancel_over_the_wire() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            svc: SvcConfig {
                workers: 1,
                ..SvcConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    // A 0ms deadline trips before any shard runs: partial, never wrong.
    let reply = client
        .submit_demo(8, Lane::Interactive, false, Some(0))
        .unwrap();
    assert!(!reply.rejected);
    let event = client.wait_result(reply.request_id).unwrap();
    let verdict = get(&event, "verdict").and_then(JsonValue::as_str).unwrap();
    assert!(
        verdict == "undecided" || verdict == "equivalent",
        "deadline produced a wrong verdict: {verdict}"
    );
    assert_eq!(
        get(&event, "cancelled").and_then(JsonValue::as_bool),
        Some(true)
    );
    server.stop();
}

/// Duplicate traffic under load: many clients submitting the *same*
/// miters concurrently all get the solo verdict (the acceptance
/// criterion's duplicate-under-load check, exercising the shared result
/// cache across connections).
#[test]
fn duplicate_jobs_under_load_match_solo() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            svc: SvcConfig {
                workers: 1,
                fuse_threshold: 64,
                ..SvcConfig::default()
            },
            admission: AdmissionConfig::default(),
            max_connections: 16,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let expected_ok = solo_verdict(5, false).to_owned();
    let expected_bad = solo_verdict(5, true).to_owned();
    let handles: Vec<_> = (0..6u64)
        .map(|c| {
            let expected_ok = expected_ok.clone();
            let expected_bad = expected_bad.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let lane = if c % 2 == 0 {
                    Lane::Interactive
                } else {
                    Lane::Batch
                };
                for i in 0..8 {
                    let corrupt = i % 2 == 1;
                    match client.check_demo(5, lane, corrupt).unwrap() {
                        Ok(verdict) => {
                            let expected = if corrupt { &expected_bad } else { &expected_ok };
                            assert_eq!(&verdict, expected, "client {c} job {i}");
                        }
                        Err(reply) => {
                            // Back off as hinted and retry once.
                            std::thread::sleep(Duration::from_millis(
                                reply.retry_after_ms.unwrap_or(1).min(50),
                            ));
                            let verdict = client
                                .check_demo(5, lane, corrupt)
                                .unwrap()
                                .expect("retry after backoff");
                            let expected = if corrupt { &expected_bad } else { &expected_ok };
                            assert_eq!(&verdict, expected, "client {c} retry {i}");
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.svc().stats();
    assert!(
        stats.cache_hits + stats.job_memo_hits > 0,
        "duplicate traffic must reuse shared results — via the cone \
         cache or the whole-job memo: {stats:?}"
    );
    server.stop();
}

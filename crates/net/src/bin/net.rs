//! TCP JSONL server binary for the CEC service.
//!
//! Listens on `--addr` (default `127.0.0.1:7878`), speaks the same
//! protocol as the stdin `svc` binary — see that binary's docs — plus
//! admission-control submit responses and pushed results (see
//! [`parsweep_net::server`]). SIGINT/SIGTERM take the graceful path:
//! stop accepting, drain every admitted job, deliver its result, print
//! final stats to stderr, exit.
//!
//! Flags: the service knobs of `svc` (`--workers`, `--exec-threads`,
//! `--deadline-ms`, `--sat`, `--prover`, `--connected`,
//! `--fuse-threshold`, `--cache-capacity`, `--cache-persist`,
//! `--semantic-vars`, `--trace`) plus the transport
//! bounds `--addr HOST:PORT`, `--max-in-flight N`, `--queue-capacity N`,
//! `--per-client-quota N`, `--max-connections N`.

use std::time::Duration;

use parsweep_net::{NetConfig, NetServer};
use parsweep_sat::ProverMode;
use parsweep_svc::{shutdown, ShardPolicy};
use parsweep_trace as trace;

fn main() {
    let mut cfg = NetConfig::default();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut trace_path = trace::env_trace_path();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs an argument")))
        };
        let mut num = |name: &str| -> usize {
            next(name)
                .parse()
                .unwrap_or_else(|_| die(&format!("{name} needs a numeric argument")))
        };
        match arg.as_str() {
            "--addr" => addr = next("--addr"),
            "--workers" => cfg.svc.workers = num("--workers").max(1),
            "--exec-threads" => cfg.svc.exec_threads = num("--exec-threads").max(1),
            "--deadline-ms" => {
                cfg.svc.default_deadline = Some(Duration::from_millis(num("--deadline-ms") as u64));
            }
            "--sat" => cfg.svc.sat_fallback = true,
            "--prover" => {
                let name = next("--prover");
                cfg.svc.prover = ProverMode::from_name(&name).unwrap_or_else(|| {
                    die(&format!(
                        "--prover needs 'sequential' or 'adaptive', got '{name}'"
                    ))
                });
            }
            "--connected" => cfg.svc.shard_policy = ShardPolicy::Connected,
            "--fuse-threshold" => cfg.svc.fuse_threshold = num("--fuse-threshold"),
            "--cache-capacity" => cfg.svc.cache_capacity = num("--cache-capacity"),
            "--cache-persist" => cfg.svc.cache_persist = Some(next("--cache-persist").into()),
            "--semantic-vars" => cfg.svc.semantic_max_vars = num("--semantic-vars"),
            "--max-in-flight" => cfg.admission.max_in_flight = num("--max-in-flight").max(1),
            "--queue-capacity" => cfg.admission.queue_capacity = num("--queue-capacity"),
            "--per-client-quota" => cfg.admission.per_client_max = num("--per-client-quota").max(1),
            "--max-connections" => cfg.max_connections = num("--max-connections").max(1),
            "--trace" => trace_path = Some(next("--trace")),
            "--help" | "-h" => {
                println!(
                    "usage: net [--addr HOST:PORT] [--workers N] [--exec-threads N] \
                     [--deadline-ms N] [--sat] [--prover sequential|adaptive] [--connected] \
                     [--fuse-threshold N] [--cache-capacity N] [--cache-persist PATH] \
                     [--semantic-vars N] [--max-in-flight N] [--queue-capacity N] \
                     [--per-client-quota N] [--max-connections N] [--trace PATH]"
                );
                println!("serves JSON-lines requests over TCP; see crate docs");
                return;
            }
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    if trace_path.is_some() {
        if trace::compiled() {
            trace::enable();
        } else {
            eprintln!(
                "net: --trace requested but this build lacks the 'trace' feature; \
                 no spans will be recorded"
            );
        }
    }

    shutdown::install_signal_handlers();
    let mut server =
        NetServer::bind(&addr, cfg).unwrap_or_else(|e| die(&format!("failed to bind {addr}: {e}")));
    eprintln!("net: listening on {}", server.local_addr());

    while !shutdown::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("net: shutdown requested, draining");
    server.stop();
    eprintln!("net: {}", server.svc().stats());

    if let Some(path) = trace_path.filter(|_| trace::compiled()) {
        trace::disable();
        match trace::write_chrome_trace(&path) {
            Ok(()) => eprintln!("net: wrote Chrome trace to {path}"),
            Err(e) => eprintln!("net: failed to write trace {path}: {e}"),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("net: {msg}");
    std::process::exit(2);
}

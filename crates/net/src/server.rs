//! The TCP JSONL server: bounded acceptor, per-connection threads,
//! admission-controlled submits, pushed results.
//!
//! Protocol: the same flat-object JSON lines the stdin front-end speaks
//! ([`parsweep_svc::frontend`]), with two differences a multi-client
//! transport forces:
//!
//! * **Submit responses carry an admission verdict.** A submit answers
//!   `{"event":"submitted","admission":"accepted","job":N}` or
//!   `{"admission":"queued","depth":N}`, or
//!   `{"event":"rejected","retry_after_ms":N}` when the lane queue is
//!   full. Queued jobs are granted later — in client round-robin order —
//!   as running jobs settle.
//! * **Results are pushed.** A settled job's `result` event is written
//!   to its connection as soon as it settles (tagged with the submit's
//!   `"id"` so clients can multiplex); `{"op":"drain"}` just blocks
//!   until this connection has nothing outstanding, then emits a `stats`
//!   event.
//!
//! Threading is std-only: one acceptor thread (non-blocking accept
//! polled against the stop flag, connections over `max_connections` get
//! an `error` event and are closed), one thread per connection (reads
//! with a poll timeout so shutdown is prompt; partial lines survive
//! timeouts), and a fixed pool of *waiter* threads — one per admission
//! budget slot, since each in-flight job needs one blocked
//! [`CecService::wait_take`] — that push each settled job's result,
//! release its budget, and submit whatever grants the release
//! unblocked. The pool is spawned once at bind: under saturation no
//! thread is created or destroyed per job.
//! Shutdown ([`NetServer::stop`]) is the same drain-and-report path the
//! stdin binary takes on SIGINT: stop accepting, let in-flight and
//! queued jobs settle, deliver their results, then join every thread.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parsweep_aig::Aig;
use parsweep_svc::frontend::{
    self, error_fields, parse_submit, push_id, result_fields, stats_fields, MiterCache,
};
use parsweep_svc::jsonl::{emit_object, get, parse_object, JsonValue};
use parsweep_svc::{CecService, Lane, SubmitOpts, SvcConfig};
use parsweep_trace as trace;
use parsweep_trace::metrics::{
    render_counter, render_gauge, render_labeled_gauge, render_labeled_histogram, Histogram,
};

use crate::admission::{Admission, AdmissionConfig, Decision, Grant};

/// How long blocking reads and waits poll before re-checking the stop
/// flag: the upper bound on shutdown latency per thread.
const POLL: Duration = Duration::from_millis(50);

/// Server configuration: the service it fronts plus transport bounds.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// The underlying CEC service.
    pub svc: SvcConfig,
    /// Admission control bounds (budget, queues, quotas).
    pub admission: AdmissionConfig,
    /// Concurrent connections accepted; excess connections receive an
    /// `error` event and are closed immediately.
    pub max_connections: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            svc: SvcConfig::default(),
            admission: AdmissionConfig::default(),
            max_connections: 64,
        }
    }
}

/// A job that passed parsing but not yet admission: everything needed to
/// submit it once granted.
struct PendingJob {
    request_id: Option<u64>,
    miter: Aig,
    deadline: Option<Duration>,
    /// When the client offered it — per-lane latency is measured from
    /// here, so queue time counts.
    offered: Instant,
}

/// A granted, submitted job handed to the waiter pool: everything a
/// waiter needs to deliver the result and release the budget slot.
struct WaitJob {
    job: parsweep_svc::JobId,
    conn: Arc<ConnState>,
    lane: Lane,
    request_id: Option<u64>,
    offered: Instant,
    granted: Instant,
}

/// The waiter pool's inbox: a plain queue + condvar so waiters sleep
/// between jobs instead of polling.
struct WaitQueue {
    q: Mutex<std::collections::VecDeque<WaitJob>>,
    ready: Condvar,
}

impl WaitQueue {
    fn new() -> WaitQueue {
        WaitQueue {
            q: Mutex::new(std::collections::VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: WaitJob) {
        self.q.lock().unwrap().push_back(job);
        self.ready.notify_one();
    }

    /// Pops the next assignment, sleeping at most `timeout` — the caller
    /// re-checks its exit condition on `None`.
    fn pop_timeout(&self, timeout: Duration) -> Option<WaitJob> {
        let mut q = self.q.lock().unwrap();
        if let Some(job) = q.pop_front() {
            return Some(job);
        }
        let (mut q, _) = self.ready.wait_timeout(q, timeout).unwrap();
        q.pop_front()
    }
}

/// Per-connection shared state: the writer half (used by waiter threads
/// to push results) and the outstanding-job count `drain` blocks on.
struct ConnState {
    id: u64,
    writer: Mutex<TcpStream>,
    outstanding: Mutex<usize>,
    idle: Condvar,
}

impl ConnState {
    /// Writes one event line; errors are ignored (a dead connection is
    /// detected and cleaned up by its reader thread).
    fn send(&self, line: &str) {
        let mut w = self.writer.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    /// Writes a pre-assembled batch of newline-terminated event lines in
    /// one syscall — the response path for a burst of pipelined requests.
    fn send_batch(&self, lines: &str) {
        if lines.is_empty() {
            return;
        }
        let mut w = self.writer.lock().unwrap();
        let _ = w.write_all(lines.as_bytes());
    }

    fn job_started(&self) {
        *self.outstanding.lock().unwrap() += 1;
    }

    fn job_finished(&self) {
        let mut n = self.outstanding.lock().unwrap();
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.idle.notify_all();
        }
    }
}

struct NetCounters {
    connections: AtomicU64,
    connections_rejected: AtomicU64,
    results_pushed: AtomicU64,
    lane_latency: [Histogram; 2],
}

struct ServerInner {
    cfg: NetConfig,
    svc: CecService,
    admission: Admission<PendingJob>,
    stop: AtomicBool,
    conns: Mutex<HashMap<u64, Arc<ConnState>>>,
    next_conn: AtomicU64,
    active_conns: AtomicUsize,
    /// Granted jobs enqueued for the waiter pool but not yet delivered;
    /// the drain in [`NetServer::stop`] waits this out.
    live_waits: AtomicUsize,
    wait_queue: WaitQueue,
    /// Path → parsed-AIG cache shared by every connection's submit path.
    files: MiterCache,
    counters: NetCounters,
}

impl ServerInner {
    /// True once nothing is admitted, queued, or awaiting delivery — the
    /// drain condition both [`NetServer::stop`] and idle waiters check.
    fn drained(&self) -> bool {
        let st = self.admission.stats();
        st.in_flight == 0 && st.queue_depth == [0, 0] && self.live_waits.load(Ordering::SeqCst) == 0
    }
}

/// The multi-client TCP front-end. Binding spawns the acceptor; dropping
/// the server performs a full [`NetServer::stop`].
pub struct NetServer {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    waiters: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stopped: bool,
}

/// Upper bound on waiter threads: each blocked `wait_take` needs one, so
/// the pool matches the admission budget, but an absurd budget must not
/// translate into an absurd thread count (beyond the cap, delivery of a
/// settled job can wait for a free waiter).
const MAX_WAITERS: usize = 64;

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections.
    pub fn bind(addr: impl ToSocketAddrs, cfg: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ServerInner {
            svc: CecService::new(cfg.svc.clone()),
            admission: Admission::new(cfg.admission.clone()),
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(1),
            active_conns: AtomicUsize::new(0),
            live_waits: AtomicUsize::new(0),
            wait_queue: WaitQueue::new(),
            files: MiterCache::default(),
            counters: NetCounters {
                connections: AtomicU64::new(0),
                connections_rejected: AtomicU64::new(0),
                results_pushed: AtomicU64::new(0),
                lane_latency: [Histogram::latency_default(), Histogram::latency_default()],
            },
            cfg,
        });
        let waiters = (0..inner.cfg.admission.max_in_flight.clamp(1, MAX_WAITERS))
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("net-waiter-{w}"))
                    .spawn(move || waiter_loop(&inner))
                    .expect("spawn net waiter")
            })
            .collect();
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let inner = Arc::clone(&inner);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || accept_loop(listener, inner, conn_threads))
        };
        Ok(NetServer {
            inner,
            addr,
            acceptor: Some(acceptor),
            waiters,
            conn_threads,
            stopped: false,
        })
    }

    /// The bound address (the actual port when bound ephemeral).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the front-end (stats, busy window, metrics).
    pub fn svc(&self) -> &CecService {
        &self.inner.svc
    }

    /// Admission counters (accepted/queued/rejected, depths).
    pub fn admission_stats(&self) -> crate::admission::AdmissionStats {
        self.inner.admission.stats()
    }

    /// Graceful shutdown: stop accepting, let every in-flight *and
    /// queued* job settle and deliver its result, then join all threads.
    /// Idempotent. This is the same drain semantics the stdin binary
    /// applies on SIGINT — nothing admitted is ever dropped.
    pub fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Admitted work drains through the settle→grant chain; poll until
        // the controller is empty and the last result has been delivered.
        while !self.inner.drained() {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Waiters exit on their next poll tick once stop is set and the
        // drain condition holds.
        self.inner.wait_queue.ready.notify_all();
        for h in self.waiters.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Service metrics plus the `parsweep_net_*` transport section.
    pub fn metrics_text(&self) -> String {
        let mut out = self.inner.svc.metrics_text();
        let c = &self.inner.counters;
        let adm = self.inner.admission.stats();
        render_counter(
            &mut out,
            "parsweep_net_connections_total",
            "Connections accepted since startup.",
            c.connections.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "parsweep_net_connections_rejected_total",
            "Connections turned away by the acceptor bound.",
            c.connections_rejected.load(Ordering::Relaxed),
        );
        render_gauge(
            &mut out,
            "parsweep_net_active_connections",
            "Connections currently open.",
            self.inner.active_conns.load(Ordering::Relaxed) as f64,
        );
        render_counter(
            &mut out,
            "parsweep_net_submits_accepted_total",
            "Submits granted immediately.",
            adm.accepted,
        );
        render_counter(
            &mut out,
            "parsweep_net_submits_queued_total",
            "Submits that waited in a lane queue.",
            adm.queued,
        );
        render_counter(
            &mut out,
            "parsweep_net_submits_rejected_total",
            "Submits rejected with a retry_after_ms hint.",
            adm.rejected,
        );
        render_gauge(
            &mut out,
            "parsweep_net_in_flight_jobs",
            "Jobs currently running under the admission budget.",
            adm.in_flight as f64,
        );
        render_labeled_gauge(
            &mut out,
            "parsweep_net_queue_depth",
            "Jobs waiting for admission, per lane.",
            "lane",
            &Lane::ALL
                .iter()
                .map(|l| (l.name(), adm.queue_depth[l.index()] as f64))
                .collect::<Vec<_>>(),
        );
        render_counter(
            &mut out,
            "parsweep_net_results_pushed_total",
            "Result events pushed to clients.",
            c.results_pushed.load(Ordering::Relaxed),
        );
        render_labeled_histogram(
            &mut out,
            "parsweep_net_job_latency_seconds",
            "Offer-to-settle latency per lane (queue time included).",
            "lane",
            &Lane::ALL
                .iter()
                .map(|l| (l.name(), c.lane_latency[l.index()].snapshot()))
                .collect::<Vec<_>>(),
        );
        out
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    inner: Arc<ServerInner>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if inner.active_conns.load(Ordering::SeqCst) >= inner.cfg.max_connections {
                    inner
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    trace::instant("net", "conn.rejected", vec![]);
                    let mut stream = stream;
                    let _ = stream.write_all(
                        emit_object(&error_fields(
                            "server full: connection limit reached".into(),
                        ))
                        .as_bytes(),
                    );
                    let _ = stream.write_all(b"\n");
                    continue;
                }
                let id = inner.next_conn.fetch_add(1, Ordering::Relaxed);
                inner.active_conns.fetch_add(1, Ordering::SeqCst);
                inner.counters.connections.fetch_add(1, Ordering::Relaxed);
                trace::instant(
                    "net",
                    "conn.accepted",
                    vec![("client", trace::ArgValue::U64(id))],
                );
                let inner2 = Arc::clone(&inner);
                let handle = std::thread::spawn(move || connection_loop(stream, id, inner2));
                conn_threads.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn connection_loop(stream: TcpStream, conn_id: u64, inner: Arc<ServerInner>) {
    trace::set_thread_label(&format!("net-conn-{conn_id}"));
    let mut span = trace::span("net", "conn");
    span.arg_u64("client", conn_id);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let state = Arc::new(ConnState {
        id: conn_id,
        writer: Mutex::new(writer),
        outstanding: Mutex::new(0),
        idle: Condvar::new(),
    });
    inner
        .conns
        .lock()
        .unwrap()
        .insert(conn_id, Arc::clone(&state));

    let shutdown = read_requests(stream, &state, &inner);

    if shutdown {
        // Server-initiated stop: leave the connection registered so
        // results of still-draining jobs can be delivered; stop() joins
        // us after the drain and the whole map drops with the server.
        return;
    }
    // Client hung up: queued jobs are dropped, in-flight ones settle
    // into a closed socket (harmless). Bound the per-client tables.
    let (_dropped, grants) = inner.admission.purge_client(conn_id);
    process_grants(&inner, grants);
    inner.conns.lock().unwrap().remove(&conn_id);
    inner.svc.forget_client(conn_id);
    inner.active_conns.fetch_sub(1, Ordering::SeqCst);
    trace::instant(
        "net",
        "conn.closed",
        vec![("client", trace::ArgValue::U64(conn_id))],
    );
}

/// Reads and handles request lines until EOF/error (returns false) or a
/// server stop (returns true). Partial lines survive poll timeouts. All
/// complete lines of one read are handled as a burst and their immediate
/// responses written back in a single syscall, so a pipelining client
/// pays per-batch, not per-request, transport overhead.
fn read_requests(mut stream: TcpStream, state: &Arc<ConnState>, inner: &Arc<ServerInner>) -> bool {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut out = String::new();
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]);
            let line = line.trim();
            if !line.is_empty() {
                handle_line(line, state, inner, &mut out);
            }
        }
        state.send_batch(&out);
        out.clear();
        if inner.stop.load(Ordering::SeqCst) {
            return true;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return false,
        }
    }
}

/// Handles one request line, appending immediate response events to
/// `out` (newline-terminated; the caller writes the whole burst in one
/// syscall). Blocking ops (`drain`) flush `out` before waiting.
fn handle_line(line: &str, state: &Arc<ConnState>, inner: &Arc<ServerInner>, out: &mut String) {
    let fields = match parse_object(line) {
        Ok(f) => f,
        Err(e) => {
            out.push_str(&emit_object(&error_fields(e.to_string())));
            out.push('\n');
            return;
        }
    };
    let id = frontend::request_id(&fields);
    fn append(out: &mut String, id: Option<u64>, mut f: Vec<(&'static str, JsonValue)>) {
        push_id(&mut f, id);
        out.push_str(&emit_object(&f));
        out.push('\n');
    }
    let mut send = |f: Vec<(&'static str, JsonValue)>| append(out, id, f);
    let op = match get(&fields, "op").and_then(JsonValue::as_str) {
        Some(op) => op,
        None => {
            send(error_fields("missing 'op'".into()));
            return;
        }
    };
    match op {
        "submit" => {
            let req = match parse_submit(&fields, &inner.files) {
                Ok(r) => r,
                Err(msg) => {
                    send(error_fields(msg));
                    return;
                }
            };
            let pending = PendingJob {
                request_id: id,
                miter: req.miter,
                deadline: req.deadline,
                offered: Instant::now(),
            };
            // Count the job as outstanding from the *offer*, not the
            // grant: `drain` must wait out queued jobs too. (Before the
            // offer, so a grant's waiter can never decrement first.)
            state.job_started();
            let (decision, grants) = inner.admission.offer(state.id, req.lane, pending);
            let submitted = process_grants(inner, grants);
            match decision {
                Decision::Accepted => {
                    // The offered job itself is the last grant processed
                    // for this client.
                    let job = submitted
                        .iter()
                        .rev()
                        .find(|(c, _)| *c == state.id)
                        .map(|&(_, job)| job);
                    let mut f = vec![
                        ("event", JsonValue::Str("submitted".into())),
                        ("admission", JsonValue::Str("accepted".into())),
                    ];
                    if let Some(job) = job {
                        f.push(("job", JsonValue::Num(job.0 as f64)));
                    }
                    send(f);
                }
                Decision::Queued { depth } => send(vec![
                    ("event", JsonValue::Str("submitted".into())),
                    ("admission", JsonValue::Str("queued".into())),
                    ("depth", JsonValue::Num(depth as f64)),
                ]),
                Decision::Rejected { retry_after_ms } => {
                    state.job_finished();
                    trace::instant(
                        "net",
                        "submit.rejected",
                        vec![("client", trace::ArgValue::U64(state.id))],
                    );
                    send(vec![
                        ("event", JsonValue::Str("rejected".into())),
                        ("retry_after_ms", JsonValue::Num(retry_after_ms as f64)),
                    ]);
                }
            }
        }
        "drain" => {
            // About to block: flush the burst's buffered responses first
            // so the client sees its acks while the drain waits.
            state.send_batch(out);
            out.clear();
            // Block until this connection has nothing outstanding (its
            // results were already pushed), then report stats.
            let mut outstanding = state.outstanding.lock().unwrap();
            while *outstanding > 0 && !inner.stop.load(Ordering::SeqCst) {
                let (guard, _) = state.idle.wait_timeout(outstanding, POLL).unwrap();
                outstanding = guard;
            }
            drop(outstanding);
            append(out, id, stats_fields(&inner.svc));
        }
        "stats" => send(stats_fields(&inner.svc)),
        "metrics" => {
            // Transport metrics need the server handle; the service view
            // is rendered here and the net section appended by the
            // binary's periodic dump instead. Over the wire, serve the
            // full service text.
            send(vec![
                ("event", JsonValue::Str("metrics".into())),
                ("text", JsonValue::Str(inner.svc.metrics_text())),
            ]);
        }
        other => send(error_fields(format!("unknown op '{other}'"))),
    }
}

/// Submits granted jobs and hands them to the waiter pool. Grants whose
/// connection is gone release their budget immediately (which can grant
/// further jobs — handled iteratively, not recursively). Returns the
/// `(client, job)` pairs actually submitted, in grant order.
fn process_grants(
    inner: &Arc<ServerInner>,
    grants: Vec<Grant<PendingJob>>,
) -> Vec<(u64, parsweep_svc::JobId)> {
    let mut worklist: std::collections::VecDeque<Grant<PendingJob>> = grants.into();
    let mut submitted = Vec::new();
    while let Some(grant) = worklist.pop_front() {
        let conn = inner.conns.lock().unwrap().get(&grant.client).cloned();
        let Some(conn) = conn else {
            // Granted to a client that vanished between queue and grant:
            // give the budget back and keep pumping.
            worklist.extend(inner.admission.settle(grant.client, Duration::ZERO));
            continue;
        };
        // Outstanding was already counted at offer time (drain waits out
        // queued jobs too); the waiter balances it at settle.
        let job = inner.svc.submit_with_opts(
            grant.payload.miter.clone(),
            SubmitOpts {
                deadline: grant.payload.deadline,
                lane: grant.lane,
                client: grant.client,
            },
        );
        submitted.push((grant.client, job));
        inner.live_waits.fetch_add(1, Ordering::SeqCst);
        inner.wait_queue.push(WaitJob {
            job,
            conn,
            lane: grant.lane,
            request_id: grant.payload.request_id,
            offered: grant.payload.offered,
            granted: Instant::now(),
        });
    }
    submitted
}

/// One waiter-pool thread: block on the next granted job's settle, push
/// its result, release the budget slot, submit unblocked grants. Exits
/// once the server is stopping and fully drained.
fn waiter_loop(inner: &Arc<ServerInner>) {
    trace::set_thread_label("net-waiter");
    loop {
        let Some(w) = inner.wait_queue.pop_timeout(POLL) else {
            if inner.stop.load(Ordering::SeqCst) && inner.drained() {
                return;
            }
            continue;
        };
        let result = inner.svc.wait_take(w.job);
        let service_time = w.granted.elapsed();
        inner.counters.lane_latency[w.lane.index()].observe(w.offered.elapsed().as_secs_f64());
        if let Some(result) = result {
            let mut f = result_fields(&result);
            push_id(&mut f, w.request_id);
            w.conn.send(&emit_object(&f));
            inner
                .counters
                .results_pushed
                .fetch_add(1, Ordering::Relaxed);
        }
        w.conn.job_finished();
        let grants = inner.admission.settle(w.conn.id, service_time);
        // Decrement only after the settle's grants are enqueued, so the
        // drain condition can't observe a moment where nothing is live
        // while this settle is about to grant more work.
        process_grants(inner, grants);
        inner.live_waits.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NetClient;

    #[test]
    fn acceptor_bounds_concurrent_connections() {
        let mut server = NetServer::bind(
            "127.0.0.1:0",
            NetConfig {
                max_connections: 1,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let mut first = NetClient::connect(addr).unwrap();
        // Prove the first connection is fully established server-side.
        let reply = first
            .submit_demo(2, Lane::Interactive, false, None)
            .unwrap();
        assert_eq!(reply.admission.as_deref(), Some("accepted"));
        let mut second = NetClient::connect(addr).unwrap();
        let event = second.read_event().unwrap();
        let msg = get(&event, "message").and_then(JsonValue::as_str).unwrap();
        assert!(msg.contains("connection limit"), "{msg}");
        server.stop();
    }

    #[test]
    fn metrics_text_has_net_section() {
        let mut server = NetServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let reply = client.submit_demo(2, Lane::Batch, false, None).unwrap();
        client.wait_result(reply.request_id).unwrap();
        let text = server.metrics_text();
        assert!(text.contains("parsweep_net_connections_total 1"), "{text}");
        assert!(
            text.contains("parsweep_net_submits_accepted_total 1"),
            "{text}"
        );
        assert!(
            text.contains("parsweep_net_queue_depth{lane=\"interactive\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("parsweep_net_job_latency_seconds_count{lane=\"batch\"} 1"),
            "{text}"
        );
        server.stop();
    }

    #[test]
    fn stop_drains_queued_jobs_before_returning() {
        let mut server = NetServer::bind(
            "127.0.0.1:0",
            NetConfig {
                admission: AdmissionConfig {
                    max_in_flight: 1,
                    queue_capacity: 16,
                    per_client_max: 16,
                },
                ..NetConfig::default()
            },
        )
        .unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let mut ids = Vec::new();
        for _ in 0..6 {
            let reply = client
                .submit_demo(4, Lane::Interactive, false, None)
                .unwrap();
            ids.push(reply.request_id);
        }
        server.stop();
        // Every admitted job — queued ones included — delivered a result.
        for id in ids {
            let event = client.wait_result(id).unwrap();
            let verdict = get(&event, "verdict").and_then(JsonValue::as_str).unwrap();
            assert_eq!(verdict, "equivalent");
        }
        assert_eq!(server.svc().stats().jobs_completed, 6);
    }
}

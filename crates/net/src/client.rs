//! A small blocking JSONL client for the TCP front-end.
//!
//! Used by the integration tests and the saturation bench; also a
//! reference for what a real client looks like: write one flat JSON
//! request per line with an `"id"`, read pushed events, and match
//! responses back to requests by that id (results arrive whenever their
//! job settles, not in request order).

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use parsweep_svc::jsonl::{emit_object, get, parse_object, JsonValue};
use parsweep_svc::Lane;

/// A parsed event: the flat object's fields.
pub type Event = Vec<(String, JsonValue)>;

/// The server's answer to one submit.
#[derive(Clone, Debug, Default)]
pub struct SubmitReply {
    /// `"accepted"` or `"queued"` (absent when rejected).
    pub admission: Option<String>,
    /// The service job id (accepted submits only).
    pub job: Option<u64>,
    /// Backoff hint (rejected submits only).
    pub retry_after_ms: Option<u64>,
    /// The request id this client attached; results carry it back.
    pub request_id: u64,
    /// True when the submit was rejected.
    pub rejected: bool,
}

/// Blocking JSONL client over one TCP connection.
pub struct NetClient {
    stream: TcpStream,
    buf: Vec<u8>,
    pending: VecDeque<Event>,
    next_id: u64,
}

impl NetClient {
    /// Connects to a [`crate::NetServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            buf: Vec::new(),
            pending: VecDeque::new(),
            next_id: 1,
        })
    }

    /// Sends one raw request line.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Reads the next event (blocking), in arrival order. Buffered
    /// events set aside by the matchers are returned first.
    pub fn read_event(&mut self) -> std::io::Result<Event> {
        if let Some(event) = self.pending.pop_front() {
            return Ok(event);
        }
        self.read_event_from_wire()
    }

    fn read_event_from_wire(&mut self) -> std::io::Result<Event> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                if line.trim().is_empty() {
                    continue;
                }
                return parse_object(&line).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad event line: {e} ({line})"),
                    )
                });
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Reads events until one satisfies `matches`; others are buffered
    /// for later [`read_event`]/matcher calls.
    pub fn read_until(&mut self, matches: impl Fn(&Event) -> bool) -> std::io::Result<Event> {
        if let Some(i) = self.pending.iter().position(&matches) {
            return Ok(self.pending.remove(i).expect("position just found"));
        }
        loop {
            let event = self.read_event_from_wire()?;
            if matches(&event) {
                return Ok(event);
            }
            self.pending.push_back(event);
        }
    }

    /// Submits a demo-adder job and returns the admission reply.
    pub fn submit_demo(
        &mut self,
        width: usize,
        lane: Lane,
        corrupt: bool,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<SubmitReply> {
        let request_id = self.next_id;
        self.next_id += 1;
        let mut fields = vec![
            ("op", JsonValue::Str("submit".into())),
            ("demo", JsonValue::Str("adder".into())),
            ("width", JsonValue::Num(width as f64)),
            ("lane", JsonValue::Str(lane.name().into())),
            ("id", JsonValue::Num(request_id as f64)),
        ];
        if corrupt {
            fields.push(("corrupt", JsonValue::Bool(true)));
        }
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms", JsonValue::Num(ms as f64)));
        }
        self.send_line(&emit_object(&fields))?;
        let event = self.read_until(|e| {
            event_id(e) == Some(request_id)
                && matches!(event_name(e), Some("submitted" | "rejected" | "error"))
        })?;
        let mut reply = SubmitReply {
            request_id,
            ..SubmitReply::default()
        };
        match event_name(&event) {
            Some("submitted") => {
                reply.admission = get(&event, "admission")
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned);
                reply.job = get(&event, "job")
                    .and_then(JsonValue::as_f64)
                    .map(|v| v as u64);
            }
            Some("rejected") => {
                reply.rejected = true;
                reply.retry_after_ms = get(&event, "retry_after_ms")
                    .and_then(JsonValue::as_f64)
                    .map(|v| v as u64);
            }
            _ => {
                let msg = get(&event, "message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown error");
                return Err(std::io::Error::other(msg.to_owned()));
            }
        }
        Ok(reply)
    }

    /// Blocks until the result of the given request arrives.
    pub fn wait_result(&mut self, request_id: u64) -> std::io::Result<Event> {
        self.read_until(|e| event_name(e) == Some("result") && event_id(e) == Some(request_id))
    }

    /// Submit-and-wait round trip; returns the verdict string, or the
    /// rejection reply for the caller to back off on.
    pub fn check_demo(
        &mut self,
        width: usize,
        lane: Lane,
        corrupt: bool,
    ) -> std::io::Result<Result<String, SubmitReply>> {
        let reply = self.submit_demo(width, lane, corrupt, None)?;
        if reply.rejected {
            return Ok(Err(reply));
        }
        let result = self.wait_result(reply.request_id)?;
        let verdict = get(&result, "verdict")
            .and_then(JsonValue::as_str)
            .unwrap_or("missing")
            .to_owned();
        Ok(Ok(verdict))
    }

    /// Sends `{"op":"drain"}` and blocks until the stats event answers —
    /// i.e. until every job this connection submitted has settled.
    pub fn drain(&mut self) -> std::io::Result<Event> {
        let request_id = self.next_id;
        self.next_id += 1;
        self.send_line(&emit_object(&[
            ("op", JsonValue::Str("drain".into())),
            ("id", JsonValue::Num(request_id as f64)),
        ]))?;
        self.read_until(|e| event_name(e) == Some("stats") && event_id(e) == Some(request_id))
    }
}

/// The `event` field of an event.
pub fn event_name(event: &Event) -> Option<&str> {
    get(event, "event").and_then(JsonValue::as_str)
}

/// The echoed request id of an event.
pub fn event_id(event: &Event) -> Option<u64> {
    get(event, "id")
        .and_then(JsonValue::as_f64)
        .map(|v| v as u64)
}

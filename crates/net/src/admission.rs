//! Admission control with backpressure and per-client fairness.
//!
//! The server cannot let every connection pour jobs straight into the
//! service: one bulk client would fill the worker queues and every other
//! client's latency would go to the moon. [`Admission`] sits between the
//! protocol and [`parsweep_svc::CecService`] and enforces three things:
//!
//! * **A bounded in-flight budget.** At most `max_in_flight` jobs run in
//!   the service at once. An offer beyond the budget is *queued*; an
//!   offer beyond the queue bound is *rejected* with a `retry_after_ms`
//!   hint derived from an EWMA of recent job durations.
//! * **Two priority lanes.** `interactive` drains ahead of `batch`, but
//!   one grant in every [`BATCH_SHARE`] prefers batch, so bulk traffic
//!   keeps flowing under an interactive flood (the mirror image of the
//!   worker pool's lane rotation).
//! * **Round-robin across clients, with quotas.** Within a lane, queued
//!   jobs drain one client at a time in rotation — a client with 100
//!   queued jobs gets the same grant rate as one with 2 — and no client
//!   holds more than `per_client_max` in-flight jobs, so even an empty
//!   queue cannot be monopolized.
//!
//! The controller is payload-generic and lock-simple (one mutex, no
//! internal threads): `offer` and `settle` both return the [`Grant`]s
//! they unblocked, and the *caller* submits those to the service outside
//! the lock.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

use parsweep_svc::Lane;

/// One queued-or-granted grant prefers the batch lane out of every
/// `BATCH_SHARE` grants (the rest prefer interactive).
pub const BATCH_SHARE: u64 = 4;

/// Admission-control parameters.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Jobs allowed in the service at once (the backpressure budget).
    pub max_in_flight: usize,
    /// Queued jobs allowed per lane before offers are rejected.
    pub queue_capacity: usize,
    /// In-flight jobs allowed per client (the fairness quota).
    pub per_client_max: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight: 8,
            queue_capacity: 64,
            per_client_max: 4,
        }
    }
}

/// The verdict on one [`Admission::offer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// The offered job itself was granted immediately.
    Accepted,
    /// The job was queued; `depth` jobs sit ahead of it in its lane.
    Queued {
        /// Queued jobs ahead of this one in the same lane.
        depth: usize,
    },
    /// The lane's queue is full; retry after roughly this many ms.
    Rejected {
        /// Backoff hint from the recent-job-duration EWMA and the
        /// current backlog.
        retry_after_ms: u64,
    },
}

/// A job released by the controller: submit it to the service now.
pub struct Grant<T> {
    /// The client the job belongs to.
    pub client: u64,
    /// The lane it was queued on.
    pub lane: Lane,
    /// The caller's payload, returned verbatim.
    pub payload: T,
}

/// Counter snapshot for metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Offers granted immediately.
    pub accepted: u64,
    /// Offers that waited in a lane queue first.
    pub queued: u64,
    /// Offers turned away with a retry hint.
    pub rejected: u64,
    /// Jobs currently running in the service.
    pub in_flight: usize,
    /// Jobs currently waiting, per lane (`[interactive, batch]`).
    pub queue_depth: [usize; 2],
}

struct QueuedJob<T> {
    client: u64,
    payload: T,
}

/// One lane's queue: per-client FIFOs drained round-robin.
struct LaneQueue<T> {
    /// Client rotation order; a client appears at most once.
    rotation: VecDeque<u64>,
    items: HashMap<u64, VecDeque<QueuedJob<T>>>,
    len: usize,
}

impl<T> LaneQueue<T> {
    fn new() -> Self {
        LaneQueue {
            rotation: VecDeque::new(),
            items: HashMap::new(),
            len: 0,
        }
    }

    fn push(&mut self, job: QueuedJob<T>) {
        let per_client = self.items.entry(job.client).or_default();
        if per_client.is_empty() && !self.rotation.contains(&job.client) {
            self.rotation.push_back(job.client);
        }
        per_client.push_back(job);
        self.len += 1;
    }

    /// Pops the next job in client rotation, skipping clients at quota.
    /// The served client moves to the back of the rotation.
    fn pop_fair(&mut self, at_quota: impl Fn(u64) -> bool) -> Option<QueuedJob<T>> {
        for _ in 0..self.rotation.len() {
            let client = *self.rotation.front()?;
            let queue = self.items.get_mut(&client);
            let empty = queue.as_ref().is_none_or(|q| q.is_empty());
            if empty {
                self.rotation.pop_front();
                self.items.remove(&client);
                continue;
            }
            if at_quota(client) {
                self.rotation.rotate_left(1);
                continue;
            }
            let queue = queue.expect("non-empty checked");
            let job = queue.pop_front().expect("non-empty checked");
            self.len -= 1;
            if queue.is_empty() {
                self.items.remove(&client);
                self.rotation.pop_front();
            } else {
                self.rotation.rotate_left(1);
            }
            return Some(job);
        }
        None
    }

    fn purge(&mut self, client: u64) -> Vec<T> {
        let drained: Vec<T> = self
            .items
            .remove(&client)
            .map(|q| q.into_iter().map(|j| j.payload).collect())
            .unwrap_or_default();
        self.len -= drained.len();
        self.rotation.retain(|&c| c != client);
        drained
    }
}

struct State<T> {
    in_flight: usize,
    per_client: HashMap<u64, usize>,
    lanes: [LaneQueue<T>; 2],
    grants: u64,
    /// EWMA of settled-job durations, in microseconds (seed: 5ms).
    ewma_job_micros: f64,
    accepted: u64,
    queued: u64,
    rejected: u64,
}

/// The admission controller. See the module docs for the policy.
pub struct Admission<T> {
    cfg: AdmissionConfig,
    state: Mutex<State<T>>,
}

impl<T> Admission<T> {
    /// A controller with the given bounds.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            state: Mutex::new(State {
                in_flight: 0,
                per_client: HashMap::new(),
                lanes: [LaneQueue::new(), LaneQueue::new()],
                grants: 0,
                ewma_job_micros: 5_000.0,
                accepted: 0,
                queued: 0,
                rejected: 0,
            }),
        }
    }

    /// Offers one job. The [`Decision`] concerns the offered job itself;
    /// the returned grants are *other* (queued) jobs the attempt
    /// unblocked — submit every one of them, then (on `Accepted`) the
    /// offered payload is the last grant in the list.
    pub fn offer(&self, client: u64, lane: Lane, payload: T) -> (Decision, Vec<Grant<T>>) {
        let mut st = self.state.lock().unwrap();
        // Drain whatever is already eligible, so an idle-but-backlogged
        // controller never lets a newcomer jump the queue.
        let mut grants = self.pump(&mut st);
        let quota_free = st.per_client.get(&client).copied().unwrap_or(0) < self.cfg.per_client_max;
        // After the pump, every still-queued job is blocked (budget or
        // its client's quota) — so accepting here never jumps an
        // eligible job, and a budget-free offer from an under-quota
        // client implies that client has nothing queued either.
        if st.in_flight < self.cfg.max_in_flight && quota_free {
            st.in_flight += 1;
            *st.per_client.entry(client).or_insert(0) += 1;
            st.grants += 1;
            st.accepted += 1;
            grants.push(Grant {
                client,
                lane,
                payload,
            });
            return (Decision::Accepted, grants);
        }
        let depth = st.lanes[lane.index()].len;
        if depth < self.cfg.queue_capacity {
            st.lanes[lane.index()].push(QueuedJob { client, payload });
            st.queued += 1;
            return (Decision::Queued { depth }, grants);
        }
        st.rejected += 1;
        let retry_after_ms = self.retry_hint(&st);
        (Decision::Rejected { retry_after_ms }, grants)
    }

    /// Records one settled job (releasing budget and the client's quota
    /// slot) and returns the queued jobs that freed up.
    pub fn settle(&self, client: u64, duration: Duration) -> Vec<Grant<T>> {
        let mut st = self.state.lock().unwrap();
        st.in_flight = st.in_flight.saturating_sub(1);
        if let Some(count) = st.per_client.get_mut(&client) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                st.per_client.remove(&client);
            }
        }
        // EWMA with alpha 1/8: smooth enough to ride out one slow job,
        // fresh enough to track a workload shift within ~10 jobs.
        let micros = duration.as_secs_f64() * 1e6;
        st.ewma_job_micros += (micros - st.ewma_job_micros) / 8.0;
        self.pump(&mut st)
    }

    /// Drops a disconnected client's *queued* jobs (in-flight ones still
    /// settle normally) and returns their payloads plus any grants the
    /// freed queue slots unblocked.
    pub fn purge_client(&self, client: u64) -> (Vec<T>, Vec<Grant<T>>) {
        let mut st = self.state.lock().unwrap();
        let mut dropped = Vec::new();
        for lane in &mut st.lanes {
            dropped.extend(lane.purge(client));
        }
        let grants = self.pump(&mut st);
        (dropped, grants)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.state.lock().unwrap();
        AdmissionStats {
            accepted: st.accepted,
            queued: st.queued,
            rejected: st.rejected,
            in_flight: st.in_flight,
            queue_depth: [st.lanes[0].len, st.lanes[1].len],
        }
    }

    /// The backoff a rejected client should observe right now.
    pub fn current_retry_hint_ms(&self) -> u64 {
        self.retry_hint(&self.state.lock().unwrap())
    }

    /// Expected time until the backlog ahead of a new arrival drains:
    /// `(in_flight + queued) * ewma_job_time / max_in_flight`, clamped
    /// to [1ms, 60s].
    fn retry_hint(&self, st: &State<T>) -> u64 {
        let backlog = st.in_flight + st.lanes[0].len + st.lanes[1].len;
        let ms =
            (backlog as f64 * st.ewma_job_micros) / (self.cfg.max_in_flight.max(1) as f64 * 1e3);
        (ms.ceil() as u64).clamp(1, 60_000)
    }

    /// Grants queued jobs while budget allows, honoring lane weighting
    /// and client rotation. Caller holds the lock.
    fn pump(&self, st: &mut State<T>) -> Vec<Grant<T>> {
        let mut grants = Vec::new();
        while st.in_flight < self.cfg.max_in_flight {
            // Every BATCH_SHARE-th grant prefers batch, mirroring the
            // worker pool's anti-starvation rotation.
            let order = if st.grants % BATCH_SHARE == BATCH_SHARE - 1 {
                [Lane::Batch, Lane::Interactive]
            } else {
                [Lane::Interactive, Lane::Batch]
            };
            let mut granted = false;
            for lane in order {
                let per_client = &st.per_client;
                let quota = self.cfg.per_client_max;
                let job = st.lanes[lane.index()]
                    .pop_fair(|c| per_client.get(&c).copied().unwrap_or(0) >= quota);
                if let Some(job) = job {
                    st.in_flight += 1;
                    *st.per_client.entry(job.client).or_insert(0) += 1;
                    st.grants += 1;
                    grants.push(Grant {
                        client: job.client,
                        lane,
                        payload: job.payload,
                    });
                    granted = true;
                    break;
                }
            }
            if !granted {
                break;
            }
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_in_flight: usize, queue_capacity: usize, per_client_max: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_in_flight,
            queue_capacity,
            per_client_max,
        }
    }

    fn offer(a: &Admission<u32>, client: u64, lane: Lane, payload: u32) -> Decision {
        let (d, grants) = a.offer(client, lane, payload);
        // Tests drive the controller synchronously; unblocked grants are
        // settled by the test when it wants them to finish.
        assert!(
            grants.len() <= 1 || matches!(d, Decision::Accepted),
            "offers in these tests never unblock queued work"
        );
        d
    }

    #[test]
    fn budget_accepts_then_queues_then_rejects() {
        let a: Admission<u32> = Admission::new(cfg(2, 2, 8));
        assert_eq!(offer(&a, 1, Lane::Interactive, 0), Decision::Accepted);
        assert_eq!(offer(&a, 1, Lane::Interactive, 1), Decision::Accepted);
        assert_eq!(
            offer(&a, 1, Lane::Interactive, 2),
            Decision::Queued { depth: 0 }
        );
        assert_eq!(
            offer(&a, 1, Lane::Interactive, 3),
            Decision::Queued { depth: 1 }
        );
        match offer(&a, 1, Lane::Interactive, 4) {
            Decision::Rejected { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected rejection, got {other:?}"),
        }
        let stats = a.stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.queued, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.queue_depth, [2, 0]);
    }

    #[test]
    fn settle_grants_queued_fifo() {
        let a: Admission<u32> = Admission::new(cfg(1, 8, 8));
        assert_eq!(offer(&a, 1, Lane::Interactive, 10), Decision::Accepted);
        offer(&a, 1, Lane::Interactive, 11);
        offer(&a, 1, Lane::Interactive, 12);
        let grants = a.settle(1, Duration::from_millis(1));
        assert_eq!(grants.len(), 1, "budget 1: exactly one grant per settle");
        assert_eq!(grants[0].payload, 11);
        let grants = a.settle(1, Duration::from_millis(1));
        assert_eq!(grants[0].payload, 12);
    }

    #[test]
    fn rotation_alternates_between_flooder_and_light_client() {
        let a: Admission<u32> = Admission::new(cfg(1, 64, 64));
        assert_eq!(offer(&a, 1, Lane::Batch, 0), Decision::Accepted);
        // Client 1 floods; client 2 queues two jobs behind the flood.
        for i in 1..=10 {
            offer(&a, 1, Lane::Batch, i);
        }
        offer(&a, 2, Lane::Batch, 100);
        offer(&a, 2, Lane::Batch, 101);
        let mut order = Vec::new();
        for _ in 0..12 {
            for g in a.settle(order.last().copied().unwrap_or(1), Duration::from_millis(1)) {
                order.push(g.client);
            }
        }
        // Client 2's two jobs must both land within the first four
        // grants: round-robin, not FIFO-behind-the-flood.
        let first_four: Vec<u64> = order.iter().take(4).copied().collect();
        assert_eq!(
            first_four.iter().filter(|&&c| c == 2).count(),
            2,
            "order: {order:?}"
        );
    }

    #[test]
    fn batch_gets_a_share_under_interactive_pressure() {
        let a: Admission<u32> = Admission::new(cfg(1, 64, 64));
        assert_eq!(offer(&a, 1, Lane::Interactive, 0), Decision::Accepted);
        for i in 1..=10 {
            offer(&a, 1, Lane::Interactive, i);
        }
        offer(&a, 2, Lane::Batch, 100);
        let mut lanes = Vec::new();
        for _ in 0..8 {
            for g in a.settle(1, Duration::from_millis(1)) {
                lanes.push(g.lane);
            }
        }
        let batch_pos = lanes
            .iter()
            .position(|&l| l == Lane::Batch)
            .expect("batch job granted");
        assert!(
            batch_pos < BATCH_SHARE as usize,
            "batch waited {batch_pos} grants under flood: {lanes:?}"
        );
    }

    #[test]
    fn per_client_quota_queues_even_with_free_budget() {
        let a: Admission<u32> = Admission::new(cfg(8, 8, 2));
        assert_eq!(offer(&a, 1, Lane::Interactive, 0), Decision::Accepted);
        assert_eq!(offer(&a, 1, Lane::Interactive, 1), Decision::Accepted);
        // Budget has 6 free slots, but client 1 is at quota.
        assert!(matches!(
            offer(&a, 1, Lane::Interactive, 2),
            Decision::Queued { .. }
        ));
        // A different client sails through — even with client 1 queued,
        // because client 1's queued job is quota-blocked, not eligible.
        let (d, grants) = a.offer(2, Lane::Interactive, 100);
        assert_eq!(d, Decision::Accepted);
        assert_eq!(grants.len(), 1);
        // Once client 1 settles one job, its queued job is granted.
        let grants = a.settle(1, Duration::from_millis(1));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].payload, 2);
    }

    #[test]
    fn purge_drops_only_queued_jobs() {
        let a: Admission<u32> = Admission::new(cfg(1, 8, 8));
        assert_eq!(offer(&a, 1, Lane::Interactive, 0), Decision::Accepted);
        offer(&a, 1, Lane::Interactive, 1);
        offer(&a, 2, Lane::Interactive, 100);
        let (dropped, grants) = a.purge_client(1);
        assert_eq!(dropped, vec![1]);
        assert!(grants.is_empty(), "budget still held by client 1");
        // Client 1's in-flight job settles; client 2's queued job drains.
        let grants = a.settle(1, Duration::from_millis(1));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].client, 2);
        assert_eq!(a.stats().queue_depth, [0, 0]);
    }

    #[test]
    fn retry_hint_scales_with_backlog() {
        let a: Admission<u32> = Admission::new(cfg(1, 4, 8));
        assert_eq!(offer(&a, 1, Lane::Interactive, 0), Decision::Accepted);
        let small = a.current_retry_hint_ms();
        for i in 0..4 {
            offer(&a, 1, Lane::Interactive, i);
        }
        let large = a.current_retry_hint_ms();
        assert!(
            large > small,
            "deeper backlog must push the hint up: {small} vs {large}"
        );
    }
}

//! # parsweep-net — the networked multi-client front-end
//!
//! The engine underneath ([`parsweep_svc::CecService`]) is a throughput
//! machine: many independent cone proofs, a work-stealing pool, a
//! structural result cache. The stdin front-end wastes that — one
//! client, one request at a time, queue-wait dominating latency. This
//! crate is the "many concurrent CEC jobs" story from the paper's
//! service framing: a TCP server speaking the same JSON-lines protocol,
//! std-only (thread-per-connection, no async runtime, no new
//! dependencies), with the three mechanisms a shared service needs:
//!
//! * **Admission control** ([`admission`]): a bounded in-flight budget
//!   with per-lane queues; submits answer `accepted`, `queued`, or
//!   `rejected` with a `retry_after_ms` backoff hint.
//! * **Fairness**: round-robin grant order across clients, per-client
//!   in-flight quotas, and two priority lanes
//!   (`"lane":"interactive"|"batch"`) with an anti-starvation rotation
//!   mirroring the worker pool's.
//! * **Pushed, multiplexed results**: requests carry an `"id"` the
//!   server echoes on every response, so one connection can pipeline
//!   many jobs and match results as they settle.
//!
//! Shard fusing (batching tiny cones into one pooled dispatch) lives in
//! the service layer ([`parsweep_svc::SvcConfig::fuse_threshold`]) and
//! is switched on by the server's binary, where small-job traffic
//! actually concentrates. The saturation bench (`net_bench` in
//! `parsweep-bench`) drives N concurrent clients against this server
//! until throughput flattens and commits the curve as `BENCH_net.json`.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod server;

pub use admission::{Admission, AdmissionConfig, AdmissionStats, Decision, Grant};
pub use client::{Event, NetClient, SubmitReply};
pub use server::{NetConfig, NetServer};

//! Property test: sharding is verdict-preserving.
//!
//! The service may split a miter per output cone or per connected
//! component ([`ShardPolicy`]), prove the shards in any order across
//! workers, and compose the shard verdicts. None of that may change
//! *what* is decided: on the same miter, a sharded service run and an
//! unsharded engine run must land in the same verdict class whenever both
//! decide, and every reported counter-example must fire on the submitted
//! miter.

use parsweep_aig::{miter, random::random_aig, Aig};
use parsweep_core::{sim_sweep, EngineConfig};
use parsweep_par::Executor;
use parsweep_sat::Verdict;
use parsweep_svc::{CecService, ShardPolicy, SvcConfig};
use proptest::prelude::*;

/// Runs `m` through the service under `policy` and returns the verdict.
fn service_verdict(m: &Aig, policy: ShardPolicy) -> Verdict {
    let svc = CecService::new(SvcConfig {
        workers: 2,
        shard_policy: policy,
        ..SvcConfig::default()
    });
    let id = svc.submit(m.clone());
    svc.wait(id).expect("job exists").verdict
}

/// Both verdicts decided and disagreeing is the one outcome sharding must
/// never produce; `Undecided` on either side proves nothing either way.
fn check_agreement(m: &Aig, unsharded: &Verdict, sharded: &Verdict, policy: ShardPolicy) {
    match (unsharded, sharded) {
        (Verdict::Equivalent, Verdict::NotEquivalent(_))
        | (Verdict::NotEquivalent(_), Verdict::Equivalent) => {
            panic!("{policy:?} flipped the verdict: {unsharded:?} vs {sharded:?}");
        }
        _ => {}
    }
    if let Verdict::NotEquivalent(cex) = sharded {
        assert!(cex.fires(m), "{policy:?} returned a non-firing cex");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random multi-PO networks treated as miters: usually disproved,
    /// occasionally proved (constant cones) — both paths must agree with
    /// the unsharded engine under both shard policies.
    #[test]
    fn sharding_preserves_random_miter_verdicts(
        num_pis in 3usize..7,
        num_ands in 8usize..48,
        num_pos in 2usize..5,
        seed in 0u64..1_000_000,
    ) {
        let m = random_aig(num_pis, num_ands, num_pos, seed);
        let exec = Executor::with_threads(1);
        let unsharded = sim_sweep(&m, &exec, &EngineConfig::default()).verdict;
        if let Verdict::NotEquivalent(cex) = &unsharded {
            prop_assert!(cex.fires(&m), "unsharded cex must fire");
        }
        for policy in [ShardPolicy::PerOutput, ShardPolicy::Connected] {
            let sharded = service_verdict(&m, policy);
            check_agreement(&m, &unsharded, &sharded, policy);
        }
    }

    /// Equivalent multi-PO miters (same function, different structure per
    /// output): every policy must prove them whenever the unsharded
    /// engine does.
    #[test]
    fn sharding_preserves_equivalent_miter_verdicts(
        width in 1usize..5,
        corrupt in any::<bool>(),
    ) {
        let a = xor_net(width, false, false);
        let b = xor_net(width, true, corrupt);
        let m = miter(&a, &b).expect("same interface");
        let exec = Executor::with_threads(1);
        let unsharded = sim_sweep(&m, &exec, &EngineConfig::default()).verdict;
        prop_assert_eq!(
            matches!(unsharded, Verdict::Equivalent),
            !corrupt,
            "engine baseline on width {} corrupt {}", width, corrupt
        );
        for policy in [ShardPolicy::PerOutput, ShardPolicy::Connected] {
            let sharded = service_verdict(&m, policy);
            check_agreement(&m, &unsharded, &sharded, policy);
            if corrupt {
                prop_assert!(
                    matches!(sharded, Verdict::NotEquivalent(_)),
                    "{:?} must disprove the corrupted miter", policy
                );
            }
        }
    }
}

/// `width` independent XOR bits over disjoint PI pairs, built differently
/// per variant; `corrupt` flips the last PO so the miter is satisfiable.
fn xor_net(width: usize, variant: bool, corrupt: bool) -> Aig {
    let mut aig = Aig::new();
    let xs = aig.add_inputs(width * 2);
    for i in 0..width {
        let (a, b) = (xs[2 * i], xs[2 * i + 1]);
        let f = if variant {
            let o = aig.or(a, b);
            let n = aig.and(a, b);
            aig.and(o, !n)
        } else {
            aig.xor(a, b)
        };
        aig.add_po(if corrupt && i == width - 1 { !f } else { f });
    }
    aig
}

//! End-to-end acceptance tests for the CEC job service.
//!
//! Covers the two service-level guarantees:
//!
//! * a batch containing a duplicated miter settles the duplicate from the
//!   structural result cache while returning verdicts identical to solo
//!   engine runs;
//! * a deadline-bounded job on a miter too big to finish in time returns
//!   within twice its deadline with a *partial* — never incorrect —
//!   verdict.

use std::time::{Duration, Instant};

use parsweep_aig::{miter, Aig, Lit};
use parsweep_core::sim_sweep;
use parsweep_par::Executor;
use parsweep_sat::Verdict;
use parsweep_svc::{CecService, SvcConfig};

/// Ripple-carry adder: `w`-bit operands plus carry-in, `w + 1` outputs.
fn ripple_adder(w: usize) -> Aig {
    let mut aig = Aig::new();
    let pis = aig.add_inputs(2 * w + 1);
    let (a, rest) = pis.split_at(w);
    let (b, cin) = rest.split_at(w);
    let mut carry = cin[0];
    for i in 0..w {
        let axb = aig.xor(a[i], b[i]);
        let sum = aig.xor(axb, carry);
        let c1 = aig.and(a[i], b[i]);
        let c2 = aig.and(axb, carry);
        carry = aig.or(c1, c2);
        aig.add_po(sum);
    }
    aig.add_po(carry);
    aig
}

/// Flattened carry-lookahead adder over the same PI layout as
/// [`ripple_adder`]: each carry is a sum-of-products over all lower
/// generate/propagate pairs, so the structure shares nothing with the
/// ripple chain and the miter cannot strash to constants.
fn cla_adder(w: usize) -> Aig {
    let mut aig = Aig::new();
    let pis = aig.add_inputs(2 * w + 1);
    let (a, rest) = pis.split_at(w);
    let (b, cin) = rest.split_at(w);
    let g: Vec<Lit> = (0..w).map(|i| aig.and(a[i], b[i])).collect();
    let p: Vec<Lit> = (0..w).map(|i| aig.xor(a[i], b[i])).collect();
    let mut carries: Vec<Lit> = vec![cin[0]];
    for i in 0..w {
        // c[i+1] = g[i] | p[i]g[i-1] | ... | p[i]..p[0]c0, built as a
        // flat OR of AND-chains (not the recursive g | p&c form, which
        // would strash into the ripple carry).
        let mut c = g[i];
        for j in (0..=i).rev() {
            let mut term = if j == 0 { cin[0] } else { g[j - 1] };
            for &pk in &p[j..=i] {
                term = aig.and(term, pk);
            }
            c = aig.or(c, term);
        }
        carries.push(c);
    }
    for i in 0..w {
        let sum = aig.xor(p[i], carries[i]);
        aig.add_po(sum);
    }
    aig.add_po(carries[w]);
    aig
}

/// A CLA adder with one output corrupted (top sum bit inverted).
fn corrupt_cla_adder(w: usize) -> Aig {
    let mut aig = cla_adder(w);
    let po = aig.po(w - 1);
    aig.set_po(w - 1, !po);
    aig
}

/// Ripple-sums two equal-width vectors, dropping the final carry.
fn add_vec(aig: &mut Aig, x: &[Lit], y: &[Lit]) -> Vec<Lit> {
    let mut carry = Lit::FALSE;
    let mut out = Vec::with_capacity(x.len());
    for (&xi, &yi) in x.iter().zip(y) {
        let axb = aig.xor(xi, yi);
        let sum = aig.xor(axb, carry);
        let c1 = aig.and(xi, yi);
        let c2 = aig.and(axb, carry);
        carry = aig.or(c1, c2);
        out.push(sum);
    }
    out
}

/// Array multiplier (`w`-bit operands, `2w`-bit product) accumulating
/// partial-product rows in ascending or descending order. Addition is
/// associative and commutative, so the two orders are functionally
/// identical — but structurally disjoint, which makes the miter a
/// classically hard CEC instance with no internal equivalences to sweep.
fn multiplier(w: usize, descending: bool) -> Aig {
    let mut aig = Aig::new();
    let pis = aig.add_inputs(2 * w);
    let (a, b) = pis.split_at(w);
    let row = |aig: &mut Aig, i: usize| -> Vec<Lit> {
        // Row i = (a & b[i]) << i, padded to 2w bits.
        let mut bits = vec![Lit::FALSE; 2 * w];
        for j in 0..w {
            bits[i + j] = aig.and(a[j], b[i]);
        }
        bits
    };
    let order: Vec<usize> = if descending {
        (0..w).rev().collect()
    } else {
        (0..w).collect()
    };
    let mut acc = row(&mut aig, order[0]);
    for &i in &order[1..] {
        let r = row(&mut aig, i);
        acc = add_vec(&mut aig, &acc, &r);
    }
    for bit in acc {
        aig.add_po(bit);
    }
    aig
}

#[test]
fn duplicated_batch_hits_cache_and_matches_solo_runs() {
    let cfg = SvcConfig {
        workers: 2,
        // This test exercises the *cone-level* result cache; the
        // whole-job memo would settle the duplicate before any shard
        // probes it.
        job_memo_capacity: 0,
        ..SvcConfig::default()
    };
    let engine_cfg = cfg.engine.clone();
    let svc = CecService::new(cfg);

    // One equivalent pair, one inequivalent pair, and the equivalent pair
    // again: the duplicate must settle entirely from the cache.
    let eq = miter(&ripple_adder(8), &cla_adder(8)).unwrap();
    let ne = miter(&ripple_adder(8), &corrupt_cla_adder(8)).unwrap();
    assert!(eq.num_pos() > 0 && eq.pos().iter().any(|&po| po != Lit::FALSE));
    let jobs = [
        svc.submit(eq.clone()),
        svc.submit(ne.clone()),
        svc.submit(eq.clone()),
    ];
    let results: Vec<_> = jobs.iter().map(|&j| svc.wait(j).unwrap()).collect();

    // Verdicts are identical to solo engine runs on the same miters.
    let exec = Executor::new();
    let solo_eq = sim_sweep(&eq, &exec, &engine_cfg).verdict;
    let solo_ne = sim_sweep(&ne, &exec, &engine_cfg).verdict;
    assert_eq!(solo_eq, Verdict::Equivalent);
    assert!(matches!(solo_ne, Verdict::NotEquivalent(_)));

    assert_eq!(results[0].verdict, Verdict::Equivalent);
    assert_eq!(results[2].verdict, Verdict::Equivalent);
    match &results[1].verdict {
        Verdict::NotEquivalent(cex) => {
            // Counter-examples need not be bit-identical to the solo run's,
            // but both must actually fire the submitted miter.
            assert!(cex.fires(&ne));
            match &solo_ne {
                Verdict::NotEquivalent(solo_cex) => assert!(solo_cex.fires(&ne)),
                other => panic!("solo run returned {other:?}"),
            }
        }
        other => panic!("service returned {other:?} for the corrupt miter"),
    }

    // The duplicated submission hit the cache on every shard.
    let dup = &results[2];
    assert!(dup.stats.shards > 0);
    assert_eq!(dup.stats.cache_hits, dup.stats.shards as u64);
    assert_eq!(dup.stats.cache_misses, 0);
    let stats = svc.stats();
    assert!(stats.cache_hit_rate() > 0.0, "stats: {stats}");
    assert_eq!(stats.jobs_completed, 3);
}

#[test]
fn deadline_job_returns_promptly_with_partial_verdict() {
    // Reversed-accumulation multiplier miter: functionally equivalent,
    // structurally disjoint — far too hard to finish inside the deadline.
    // The kernel sanitizer serializes and logs every launch (an order of
    // magnitude slower), so it gets a smaller instance — engine stages
    // between cancellation polls must stay short relative to the
    // deadline — and the deadline matching headroom.
    let sanitizing = cfg!(feature = "sanitize") || std::env::var_os("PARSWEEP_SANITIZE").is_some();
    let width = if sanitizing { 12 } else { 16 };
    let eq = miter(&multiplier(width, false), &multiplier(width, true)).unwrap();

    // The engine polls the token between simulation batches and between
    // the rounds within a batch, so the 2x promptness bound needs the
    // deadline to dominate one *round*. A round simulates up to
    // `memory_words` of truth-table segments; shrinking it forces the
    // multi-round path (the paper's bounded-memory mode) and keeps the
    // poll interval tight even under the kernel sanitizer, which
    // serializes and logs every launch.
    let mut cfg = SvcConfig {
        workers: 1,
        ..SvcConfig::default()
    };
    cfg.engine.batch_entries = 1 << 12;
    cfg.engine.memory_words = 1 << 15;
    let svc = CecService::new(cfg);
    let deadline = Duration::from_millis(if sanitizing { 1500 } else { 300 });
    let start = Instant::now();
    let job = svc.submit_with_deadline(eq.clone(), Some(deadline));
    let result = svc.wait(job).unwrap();
    let elapsed = start.elapsed();

    // Prompt: the job settles within twice its deadline.
    assert!(
        elapsed <= 2 * deadline,
        "job took {elapsed:?} against a {deadline:?} deadline"
    );
    assert!(result.stats.cancelled, "deadline never tripped");

    // Partial, never wrong: the construction is equivalent, so any
    // decided answer other than Equivalent would be unsound. A cancelled
    // run may still have proved every cone it reached.
    match result.verdict {
        Verdict::Undecided | Verdict::Equivalent => {}
        Verdict::NotEquivalent(_) => panic!("cancelled job fabricated a disproof"),
    }
}

#[test]
fn cache_shared_across_jobs_with_common_cones() {
    // Two separately built miters of the same equivalent pair:
    // structurally identical cones settle from the cache across job
    // boundaries. Jobs run back to back so every shard of the second job
    // finds the first job's inserts. The whole-job memo is disabled: the
    // two miters hash identically, and a memo hit would bypass the cone
    // cache this test is about.
    let svc = CecService::new(SvcConfig {
        job_memo_capacity: 0,
        ..SvcConfig::default()
    });
    let m1 = miter(&ripple_adder(6), &cla_adder(6)).unwrap();
    let m2 = miter(&ripple_adder(6), &cla_adder(6)).unwrap();
    let j1 = svc.submit(m1);
    let r1 = svc.wait(j1).unwrap();
    let j2 = svc.submit(m2);
    let r2 = svc.wait(j2).unwrap();
    assert_eq!(r1.verdict, Verdict::Equivalent);
    assert_eq!(r2.verdict, Verdict::Equivalent);
    assert!(r1.stats.shards > 0);
    assert_eq!(r2.stats.cache_hits, r2.stats.shards as u64);
    assert_eq!(r2.stats.cache_misses, 0);
}

/// `PO = a & b` built directly, or through a redundant decomposition
/// (`a & (a & b)`) that is functionally identical but adds a gate, so
/// the two versions share no structural cache key.
fn and_net(redundant: bool) -> Aig {
    let mut aig = Aig::new();
    let xs = aig.add_inputs(2);
    let t = aig.and(xs[0], xs[1]);
    let f = if redundant { aig.and(xs[0], t) } else { t };
    aig.add_po(f);
    aig
}

/// `PO = a | b`, optionally through the same kind of redundancy.
fn or_net(redundant: bool) -> Aig {
    let mut aig = Aig::new();
    let xs = aig.add_inputs(2);
    let t = aig.or(xs[0], xs[1]);
    let f = if redundant { aig.or(xs[0], t) } else { t };
    aig.add_po(f);
    aig
}

#[test]
fn semantic_tier_serves_cex_for_structurally_new_cone() {
    // Two inequivalent miters of the same *function* (AND vs OR) whose
    // cones differ structurally: the first proves through the engine and
    // seeds the semantic tier; the second misses the structural cache
    // but settles from the semantic tier — with a counter-example that
    // must actually fire its own miter, not the seeding one.
    let m1 = miter(&and_net(false), &or_net(false)).unwrap();
    let m2 = miter(&and_net(true), &or_net(true)).unwrap();
    let c1 = m1.extract_cone(&[0]).cone;
    let c2 = m2.extract_cone(&[0]).cone;
    assert!(
        !c1.same_structure(&c2),
        "the cones must differ structurally for the test to mean anything"
    );

    let svc = CecService::new(SvcConfig::default());
    let r1 = svc.wait(svc.submit(m1.clone())).unwrap();
    let r2 = svc.wait(svc.submit(m2.clone())).unwrap();
    match &r1.verdict {
        Verdict::NotEquivalent(cex) => assert!(cex.fires(&m1)),
        other => panic!("AND vs OR settled {other:?}"),
    }
    match &r2.verdict {
        Verdict::NotEquivalent(cex) => assert!(cex.fires(&m2), "served cex must fire its miter"),
        other => panic!("structurally-new AND vs OR settled {other:?}"),
    }
    assert_eq!(r2.stats.cache_hits, 1, "second cone settled cached");
    let stats = svc.stats();
    assert_eq!(stats.cache_semantic_hits, 1, "…from the semantic tier");
}

#[test]
fn persisted_semantic_corpus_survives_a_service_restart() {
    let dir = std::env::temp_dir().join(format!("parsweep-svc-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("verdicts.log");
    std::fs::remove_file(&path).ok();

    let cfg = || SvcConfig {
        cache_persist: Some(path.clone()),
        ..SvcConfig::default()
    };
    // Single-cone miters keep the run deterministic (no sibling-shard
    // cancellation races) and every cone at 2 inputs, so each settled
    // verdict is semantically keyable and lands in the log.
    let eq = || miter(&and_net(false), &and_net(true)).unwrap();
    let ne = || miter(&and_net(false), &or_net(false)).unwrap();

    // First service lifetime: prove everything fresh, appending verdicts.
    let svc1 = CecService::new(cfg());
    let r_eq = svc1.wait(svc1.submit(eq())).unwrap();
    let r_ne = svc1.wait(svc1.submit(ne())).unwrap();
    assert_eq!(r_eq.verdict, Verdict::Equivalent);
    assert!(matches!(r_ne.verdict, Verdict::NotEquivalent(_)));
    let s1 = svc1.stats();
    assert_eq!(s1.cache_persist_appended, 2, "stats: {s1:?}");
    assert_eq!(s1.cache_persist_loaded, 0);
    drop(svc1);

    // Second lifetime: the structural cache and job memo start empty,
    // but the loaded semantic corpus settles every resubmitted cone
    // without touching the engine.
    let svc2 = CecService::new(cfg());
    let s2 = svc2.stats();
    assert_eq!(s2.cache_persist_loaded, s1.cache_persist_appended);
    let r_eq2 = svc2.wait(svc2.submit(eq())).unwrap();
    let r_ne2 = svc2.wait(svc2.submit(ne())).unwrap();
    assert_eq!(r_eq2.verdict, Verdict::Equivalent);
    match &r_ne2.verdict {
        Verdict::NotEquivalent(cex) => assert!(cex.fires(&ne())),
        other => panic!("restarted service settled {other:?}"),
    }
    assert_eq!(r_eq2.stats.cache_misses, 0, "stats: {:?}", r_eq2.stats);
    assert_eq!(r_ne2.stats.cache_misses, 0, "stats: {:?}", r_ne2.stats);
    let s2 = svc2.stats();
    assert_eq!(s2.cache_semantic_hits, 2, "both cones settled semantically");
    assert_eq!(
        s2.cache_persist_appended, 0,
        "served verdicts must not be re-appended"
    );
    drop(svc2);

    // Third lifetime against a damaged log: garbage lines and a torn
    // tail are skipped, the surviving records still serve.
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    writeln!(file, "not a record at all").unwrap();
    write!(file, "sem1 3 f").unwrap(); // torn mid-record, no newline
    drop(file);
    let svc3 = CecService::new(cfg());
    let s3 = svc3.stats();
    assert_eq!(s3.cache_persist_loaded, 2, "garbage lines cost nothing");
    let r_eq3 = svc3.wait(svc3.submit(eq())).unwrap();
    assert_eq!(r_eq3.verdict, Verdict::Equivalent);
    assert_eq!(r_eq3.stats.cache_misses, 0, "stats: {:?}", r_eq3.stats);

    std::fs::remove_dir_all(&dir).ok();
}

#![cfg(feature = "trace")]
//! End-to-end tracing acceptance: one traced service run must produce a
//! well-formed Chrome trace containing spans from all three tiers
//! (service job lifecycle, engine phases, kernel launches) and a metrics
//! snapshot with non-zero cache and launch counters.
//!
//! One test function on purpose: the span collector is process-global, so
//! concurrent tests would interleave their events.

use parsweep_aig::{miter, Aig};
use parsweep_sat::Verdict;
use parsweep_svc::{CecService, SvcConfig};
use parsweep_trace as trace;

fn xor_net(width: usize, variant: bool) -> Aig {
    let mut aig = Aig::new();
    let xs = aig.add_inputs(width * 2);
    for i in 0..width {
        let (a, b) = (xs[2 * i], xs[2 * i + 1]);
        let f = if variant {
            let o = aig.or(a, b);
            let n = aig.and(a, b);
            aig.and(o, !n)
        } else {
            aig.xor(a, b)
        };
        aig.add_po(f);
    }
    aig
}

#[test]
fn traced_service_run_spans_all_tiers() {
    assert!(trace::compiled(), "test requires the trace feature");
    trace::enable();

    let svc = CecService::new(SvcConfig::default());
    let m = miter(&xor_net(3, false), &xor_net(3, true)).unwrap();
    let id = svc.submit(m.clone());
    assert_eq!(svc.wait(id).unwrap().verdict, Verdict::Equivalent);
    // Duplicate submission: exercises the cache-probe hit path too.
    let id = svc.submit(m);
    assert_eq!(svc.wait(id).unwrap().verdict, Verdict::Equivalent);
    svc.drain();

    trace::disable();
    let events = trace::snapshot_events();
    trace::take_events(); // leave the global collector clean

    trace::validate_events(&events).expect("trace must be well-formed");
    let names: std::collections::HashSet<&str> = events.iter().map(|e| e.name.as_str()).collect();
    for required in [
        "job.shard",       // svc tier
        "job.cache_probe", // svc tier, cache path
        "job.settled",     // svc tier, instant
        "engine.run",      // engine tier
        "engine.phase.P",  // engine tier, phase span
    ] {
        assert!(
            names.contains(required),
            "missing span '{required}': {names:?}"
        );
    }
    assert!(
        names.iter().any(|n| n.starts_with("sim.")
            || n.starts_with("par.")
            || events.iter().any(|e| e.cat == "kernel")),
        "kernel-tier spans missing: {names:?}"
    );

    // The JSON export is non-trivial and shaped like a chrome://tracing
    // event array.
    let json = trace::events_to_json(&events);
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));

    // Metrics snapshot: cache and launch counters are non-zero.
    let text = svc.metrics_text();
    assert!(
        text.contains("parsweep_cache_hits_total") && !text.contains("parsweep_cache_hits_total 0"),
        "cache hits must be non-zero:\n{text}"
    );
    assert!(
        !text.contains("parsweep_kernel_launches_total 0"),
        "kernel launches must be non-zero:\n{text}"
    );
    // The sim engines declare their effects, so the fleet must report
    // statically verified launches (and expose the replay counter).
    assert!(
        text.contains("parsweep_par_static_verified_launches_total")
            && !text.contains("parsweep_par_static_verified_launches_total 0"),
        "verified launches must be non-zero:\n{text}"
    );
    assert!(
        text.contains("parsweep_par_static_verified_replays"),
        "verified-replay counter must be exposed:\n{text}"
    );
}

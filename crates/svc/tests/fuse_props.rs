//! Property test: shard fusing is verdict-preserving.
//!
//! Fusing ([`parsweep_svc::SvcConfig::fuse_threshold`]) only changes
//! *scheduling* — tiny cones are proved sequentially inside one pooled
//! dispatch instead of one dispatch each. Each cone still proves and
//! settles individually, so on the same miter a fused run and an unfused
//! run must land in the same verdict class whenever both decide, every
//! reported counter-example must fire, and the per-job shard count must
//! not change.

use parsweep_aig::{miter, random::random_aig};
use parsweep_sat::Verdict;
use parsweep_svc::{CecService, JobResult, SvcConfig};
use proptest::prelude::*;

fn run(m: &parsweep_aig::Aig, fuse_threshold: usize, workers: usize) -> JobResult {
    let svc = CecService::new(SvcConfig {
        workers,
        fuse_threshold,
        ..SvcConfig::default()
    });
    let id = svc.submit(m.clone());
    svc.wait(id).expect("job exists")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random multi-PO networks: fused and unfused runs agree whenever
    /// both decide, fused counter-examples fire on the submitted miter,
    /// and fusing never changes how many shards a job reports.
    #[test]
    fn fused_verdicts_equal_unfused(
        num_pis in 3usize..7,
        num_ands in 8usize..48,
        num_pos in 2usize..6,
        seed in 0u64..1_000_000,
        threshold_pick in 0usize..3,
        workers in 1usize..3,
    ) {
        let fuse_threshold = [8usize, 64, 1 << 20][threshold_pick];
        let m = random_aig(num_pis, num_ands, num_pos, seed);
        let unfused = run(&m, 0, workers);
        let fused = run(&m, fuse_threshold, workers);
        prop_assert_eq!(fused.stats.shards, unfused.stats.shards,
            "fusing must not change shard count");
        prop_assert_eq!(unfused.stats.fused_shards, 0);
        match (&unfused.verdict, &fused.verdict) {
            (Verdict::Equivalent, Verdict::NotEquivalent(_))
            | (Verdict::NotEquivalent(_), Verdict::Equivalent) => {
                prop_assert!(false, "fusing flipped the verdict");
            }
            _ => {}
        }
        if let Verdict::NotEquivalent(cex) = &fused.verdict {
            prop_assert!(cex.fires(&m), "fused cex must fire on the miter");
        }
    }

    /// Equivalent miters of tiny XOR cones — the exact traffic fusing
    /// targets. With a generous threshold every shard fuses, and the
    /// verdict must still be Equivalent with full per-shard accounting.
    #[test]
    fn fully_fused_equivalent_miters_prove(width in 2usize..7) {
        let mut a = parsweep_aig::Aig::new();
        let xs = a.add_inputs(width * 2);
        for i in 0..width {
            let f = a.xor(xs[2 * i], xs[2 * i + 1]);
            a.add_po(f);
        }
        let mut b = parsweep_aig::Aig::new();
        let ys = b.add_inputs(width * 2);
        for i in 0..width {
            let o = b.or(ys[2 * i], ys[2 * i + 1]);
            let n = b.and(ys[2 * i], ys[2 * i + 1]);
            let f = b.and(o, !n);
            b.add_po(f);
        }
        let m = miter(&a, &b).expect("same interface");
        let fused = run(&m, 1 << 20, 1);
        prop_assert_eq!(&fused.verdict, &Verdict::Equivalent);
        prop_assert_eq!(fused.stats.shards, width);
        prop_assert_eq!(fused.stats.fused_shards, width,
            "every tiny cone must ride the fused dispatch");
        prop_assert_eq!(
            fused.stats.cache_hits + fused.stats.cache_misses,
            width as u64,
            "per-shard cache accounting must survive fusing"
        );
    }
}

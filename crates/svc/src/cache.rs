//! Two-tier result cache: structural identity first, semantic identity
//! second — proved cones are proved forever, but not *kept* forever.
//!
//! Service traffic repeats itself — regression reruns, `double`d
//! benchmarks, shared IP blocks — and an extracted cone's verdict depends
//! only on its function. The cache exploits that at two levels:
//!
//! * **Structural tier.** Keys on
//!   [`Aig::structural_hash`](parsweep_aig::Aig::structural_hash) and
//!   verifies every candidate with
//!   [`Aig::same_structure`](parsweep_aig::Aig::same_structure), so a
//!   64-bit hash collision can cost a probe but never a wrong verdict.
//! * **Semantic tier.** Small cones are additionally keyed by the
//!   NPN-canonical form of their truth table
//!   ([`SemanticSig`](crate::semantic::SemanticSig)), which collapses
//!   structurally different implementations of the same function — and
//!   everything NPN-equivalent to it — onto one settled verdict. Key
//!   equality is full canonical-word equality (no digest), the canonical
//!   table is recomputed from the probing cone itself, and a served
//!   counterexample is lifted through the probe's own
//!   [`NpnTransform`](parsweep_sim::NpnTransform) and re-evaluated on the
//!   cone before it leaves the cache. A corrupt or hand-forged entry can
//!   cost a miss, never a wrong verdict. Settled semantic entries can be
//!   appended to a disk log ([`attach_persist`](ResultCache::attach_persist))
//!   and reloaded on restart.
//!
//! Two more properties matter for a long-lived service:
//!
//! * **Bounded residency, O(1) maintenance.** Entries beyond
//!   [`ResultCache::capacity`] are evicted least-recently-used via an
//!   intrusive doubly-linked LRU list: touch, insert and evict are all
//!   O(1) under the lock. (An earlier design kept a lazy recency queue
//!   whose compaction rebuilt an id map over the *whole cache* while
//!   holding the bucket lock — a periodic latency spike on hit-heavy
//!   traffic that the linked list removes entirely.)
//! * **Verification outside the lock.** `same_structure` is O(cone);
//!   `lookup`/`insert` clone the candidate `Arc`s under the lock, release
//!   it, verify, and re-lock only for the O(1) bookkeeping (`insert`
//!   re-checks entries that raced in since the snapshot, so two workers
//!   missing on the same cone still collapse to one entry — first proof
//!   wins).

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use parsweep_aig::Aig;
use parsweep_sat::{EngineKind, Verdict};

use crate::persist::{load_records, PersistLog, PersistRecord};
use crate::semantic::{cex_to_index, index_to_cex, SemanticKey, SemanticSig};

/// Default [`ResultCache::capacity`]: distinct cone structures retained
/// (the semantic tier is bounded by the same count, separately).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Entry format version written by this build. Version 1 entries (the
/// original cache) carry a verdict only; version 2 adds [`RoutingInfo`]
/// so a hit can pre-seed the adaptive prover's difficulty model. Old
/// callers keep using [`ResultCache::insert`]/[`ResultCache::lookup`],
/// which read and write the version-1 subset unchanged.
pub const CACHE_ENTRY_VERSION: u32 = 2;

/// How a cached verdict was won: the deciding engine and its cost. A
/// routed cache hit replays this into the adaptive prover's difficulty
/// model, so a restarted or cold dispatcher starts from the fleet's
/// history instead of static priors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutingInfo {
    /// Engine that decided the cone.
    pub engine: EngineKind,
    /// Wall-clock cost of the winning attempt, in microseconds.
    pub cost_micros: u64,
}

/// What a call to [`ResultCache::attach_persist`] recovered from disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistSummary {
    /// Valid records loaded into the semantic tier.
    pub loaded: usize,
    /// Corrupt or truncated lines skipped by the tolerant loader.
    pub skipped: usize,
}

/// A concurrent, capacity-bounded map from cone identity (structural or
/// semantic) to settled verdict.
///
/// Only *decided* verdicts are stored: `Equivalent`, or `NotEquivalent`
/// with a counter-example over the *cone's own* PIs (the caller lifts it
/// through the extraction's PI map). `Undecided` — including
/// deadline-cancelled partial runs — is never cached, so an early abort
/// cannot poison later, better-budgeted attempts.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    next_id: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    routing_hits: AtomicU64,
    semantic_hits: AtomicU64,
    persist_loaded: AtomicU64,
    persist_appended: AtomicU64,
    persist: Option<PersistLog>,
    /// Set when a structural verification began while the bucket lock was
    /// held — the timing-insensitive regression probe for the
    /// verify-outside-the-lock contract (meaningful in single-threaded
    /// tests only; under concurrency another thread's bookkeeping can
    /// hold the lock legitimately).
    #[cfg(test)]
    verified_under_lock: std::sync::atomic::AtomicBool,
}

#[derive(Debug, Default)]
struct CacheInner {
    buckets: HashMap<u64, Vec<Arc<CacheEntry>>>,
    /// Total entries across buckets (kept incrementally; `buckets` values
    /// are never empty).
    len: usize,
    /// Intrusive LRU order over entry ids, least-recent first.
    lru: LruList,
    /// Semantic tier: NPN-canonical key to settled class verdict.
    semantic: HashMap<SemanticKey, SemanticEntry>,
    /// Insertion order of semantic keys (FIFO residency bound; semantic
    /// entries are a few dozen bytes, so recency tracking isn't worth the
    /// bookkeeping).
    semantic_order: VecDeque<SemanticKey>,
}

/// Doubly-linked LRU order over entry ids. `unlink`, `push_back` (MRU)
/// and `pop_front` (LRU victim) are all O(1) hash-map operations; every
/// live cache entry has exactly one node, so eviction never scans.
#[derive(Debug, Default)]
struct LruList {
    nodes: HashMap<u64, LruNode>,
    head: Option<u64>,
    tail: Option<u64>,
}

#[derive(Debug)]
struct LruNode {
    hash: u64,
    prev: Option<u64>,
    next: Option<u64>,
}

impl LruList {
    fn push_back(&mut self, id: u64, hash: u64) {
        let prev = self.tail;
        self.nodes.insert(
            id,
            LruNode {
                hash,
                prev,
                next: None,
            },
        );
        match prev {
            Some(p) => self.nodes.get_mut(&p).expect("tail node exists").next = Some(id),
            None => self.head = Some(id),
        }
        self.tail = Some(id);
    }

    fn unlink(&mut self, id: u64) -> Option<u64> {
        let node = self.nodes.remove(&id)?;
        match node.prev {
            Some(p) => self.nodes.get_mut(&p).expect("prev node exists").next = node.next,
            None => self.head = node.next,
        }
        match node.next {
            Some(n) => self.nodes.get_mut(&n).expect("next node exists").prev = node.prev,
            None => self.tail = node.prev,
        }
        Some(node.hash)
    }

    fn touch(&mut self, id: u64) {
        if let Some(hash) = self.unlink(id) {
            self.push_back(id, hash);
        }
    }

    fn pop_front(&mut self) -> Option<(u64, u64)> {
        let id = self.head?;
        let hash = self.unlink(id).expect("head is linked");
        Some((id, hash))
    }
}

#[derive(Debug)]
struct CacheEntry {
    id: u64,
    cone: Aig,
    verdict: Verdict,
    /// Format version this entry was written with; routing is only
    /// present from version 2 on.
    version: u32,
    routing: Option<RoutingInfo>,
}

/// One settled NPN class. The class's satisfiability is summarized by two
/// canonical-space witnesses: an assignment where the canonical function
/// is 1 (absent iff it is constant 0) and one where it is 0 (absent iff
/// constant 1). Probes of either output polarity read the slot they need
/// and lift it through their own transform.
#[derive(Clone, Debug)]
struct SemanticEntry {
    ones_witness: Option<u64>,
    zeros_witness: Option<u64>,
    routing: Option<RoutingInfo>,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// An empty cache with the [`DEFAULT_CACHE_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty cache retaining at most `capacity` cone structures
    /// (capacity 0 disables caching: inserts are dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
            next_id: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            routing_hits: AtomicU64::new(0),
            semantic_hits: AtomicU64::new(0),
            persist_loaded: AtomicU64::new(0),
            persist_appended: AtomicU64::new(0),
            persist: None,
            #[cfg(test)]
            verified_under_lock: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Loads the persisted semantic corpus from `path` into the semantic
    /// tier (tolerantly: corrupt lines are skipped and counted) and keeps
    /// the file open for appending newly settled classes. Call before the
    /// cache is shared. A missing file starts a fresh corpus.
    pub fn attach_persist(&mut self, path: &Path) -> io::Result<PersistSummary> {
        let (records, skipped) = load_records(path)?;
        let mut loaded = 0usize;
        for rec in records {
            let key = SemanticKey::of(&rec.canon);
            let entry = SemanticEntry {
                ones_witness: rec.ones_witness,
                zeros_witness: rec.zeros_witness,
                routing: rec.routing,
            };
            if self.insert_semantic_entry(key, entry) {
                loaded += 1;
            }
        }
        self.persist_loaded.store(loaded as u64, Ordering::Relaxed);
        self.persist = Some(PersistLog::open_append(path)?);
        Ok(PersistSummary { loaded, skipped })
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Structural verification of bucket candidates, run with the bucket
    /// lock *released* — this is the O(cone) part of every probe, and the
    /// reason hot buckets no longer serialize workers.
    fn verify(&self, candidates: &[Arc<CacheEntry>], cone: &Aig) -> Option<Arc<CacheEntry>> {
        #[cfg(test)]
        if !candidates.is_empty() && self.inner.try_lock().is_err() {
            self.verified_under_lock
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
        candidates
            .iter()
            .find(|e| e.cone.same_structure(cone))
            .cloned()
    }

    /// Bumps an entry to most-recently-used (O(1) under the lock).
    fn touch(&self, entry: &CacheEntry) {
        self.lock().lru.touch(entry.id);
    }

    /// Evicts the least-recently-used entry; false when nothing is left.
    fn evict_one(inner: &mut CacheInner) -> bool {
        let Some((id, hash)) = inner.lru.pop_front() else {
            return false;
        };
        let bucket = inner.buckets.get_mut(&hash).expect("LRU node has a bucket");
        let pos = bucket
            .iter()
            .position(|e| e.id == id)
            .expect("LRU node has an entry");
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            inner.buckets.remove(&hash);
        }
        inner.len -= 1;
        true
    }

    /// The verified-hit path shared by [`lookup`](Self::lookup) and
    /// [`lookup_routed`](Self::lookup_routed): candidates snapshot under
    /// the lock, structural verification outside it, hit/miss accounting
    /// and recency touch.
    fn lookup_entry(&self, hash: u64, cone: &Aig) -> Option<Arc<CacheEntry>> {
        let candidates: Vec<Arc<CacheEntry>> = {
            let inner = self.lock();
            inner.buckets.get(&hash).cloned().unwrap_or_default()
        };
        match self.verify(&candidates, cone) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(&entry);
                Some(entry)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up a cone by its structural hash, verifying structure
    /// exactly (outside the bucket lock). Counts a hit or a miss; a hit
    /// refreshes the entry's recency.
    pub fn lookup(&self, hash: u64, cone: &Aig) -> Option<Verdict> {
        self.lookup_entry(hash, cone).map(|e| e.verdict.clone())
    }

    /// Like [`lookup`](Self::lookup), but also returns the entry's
    /// [`RoutingInfo`] when one was recorded (version-2 entries written
    /// by [`insert_routed`](Self::insert_routed)). A hit that carries
    /// routing counts toward [`routing_hits`](Self::routing_hits).
    pub fn lookup_routed(&self, hash: u64, cone: &Aig) -> Option<(Verdict, Option<RoutingInfo>)> {
        let entry = self.lookup_entry(hash, cone)?;
        let routing = if entry.version >= 2 {
            entry.routing
        } else {
            None
        };
        if routing.is_some() {
            self.routing_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some((entry.verdict.clone(), routing))
    }

    /// Probes the semantic tier with a cone's NPN-canonical signature.
    ///
    /// A hit is served only after it is verified against the candidate
    /// itself: the equivalence condition is re-checked on the candidate's
    /// own canonical table, and a counterexample is lifted through the
    /// candidate's transform and re-evaluated on `cone` before being
    /// returned. Anything inconsistent — a forged or bit-rotted persisted
    /// entry, a table/witness mismatch — degrades to a miss. Does not
    /// count toward structural hit/miss totals; hits count in
    /// [`semantic_hits`](Self::semantic_hits).
    pub fn lookup_semantic(
        &self,
        cone: &Aig,
        sig: &SemanticSig,
    ) -> Option<(Verdict, Option<RoutingInfo>)> {
        let entry = self.lock().semantic.get(&sig.key).cloned()?;
        let out_neg = sig.transform.output_neg;
        // The cone's function is identically 0 iff its canonical table is
        // constant `out_neg`; otherwise the witness of the opposite value
        // lifts to an input pattern that fires the cone.
        let needed = if out_neg {
            entry.zeros_witness
        } else {
            entry.ones_witness
        };
        let verdict = match needed {
            None => {
                let constant = if out_neg {
                    sig.canon.is_ones()
                } else {
                    sig.canon.is_zero()
                };
                if !constant {
                    return None; // entry contradicts the candidate's table
                }
                Verdict::Equivalent
            }
            Some(w) => {
                let w = w as usize;
                if w >= sig.canon.num_bits() || sig.canon.value(w) == out_neg {
                    return None; // witness doesn't witness
                }
                let cex = index_to_cex(sig, w);
                if !cex.fires(cone) {
                    return None; // defense in depth: must fire on the cone
                }
                Verdict::NotEquivalent(cex)
            }
        };
        self.semantic_hits.fetch_add(1, Ordering::Relaxed);
        if entry.routing.is_some() {
            self.routing_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some((verdict, entry.routing))
    }

    /// Records a settled verdict under the cone's semantic key, appending
    /// it to the persistent log when one is attached. First proof wins;
    /// returns true only for a fresh insert. `Undecided` is ignored, as
    /// is a verdict that contradicts the signature's own truth table
    /// (which would mean the proving engine and the simulator disagree —
    /// nothing trustworthy to cache).
    pub fn insert_semantic(
        &self,
        sig: &SemanticSig,
        verdict: &Verdict,
        routing: Option<RoutingInfo>,
    ) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let Some(rec) = semantic_record(sig, verdict, routing) else {
            return false;
        };
        let entry = SemanticEntry {
            ones_witness: rec.ones_witness,
            zeros_witness: rec.zeros_witness,
            routing: rec.routing,
        };
        if !self.insert_semantic_entry(SemanticKey::of(&rec.canon), entry) {
            return false;
        }
        if let Some(log) = &self.persist {
            if log.append(&rec) {
                self.persist_appended.fetch_add(1, Ordering::Relaxed);
            }
        }
        true
    }

    fn insert_semantic_entry(&self, key: SemanticKey, entry: SemanticEntry) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut inner = self.lock();
        if inner.semantic.contains_key(&key) {
            return false;
        }
        inner.semantic.insert(key.clone(), entry);
        inner.semantic_order.push_back(key);
        while inner.semantic.len() > self.capacity {
            match inner.semantic_order.pop_front() {
                Some(old) => {
                    inner.semantic.remove(&old);
                }
                None => break,
            }
        }
        true
    }

    /// Records a settled verdict for a cone, evicting least-recently-used
    /// entries beyond capacity. `Undecided` is ignored, as is a duplicate
    /// of an already-cached structure (first proof wins; the duplicate
    /// counts as a recency touch). Writes a version-1 entry — the format
    /// this cache shipped with — so pre-routing callers are bit-for-bit
    /// unchanged.
    pub fn insert(&self, hash: u64, cone: &Aig, verdict: &Verdict) {
        self.insert_versioned(hash, cone, verdict, 1, None);
    }

    /// Records a settled verdict together with how it was won. Writes a
    /// [`CACHE_ENTRY_VERSION`] entry whose routing a later
    /// [`lookup_routed`](Self::lookup_routed) replays into the prover's
    /// difficulty model. First proof wins: a duplicate insert never
    /// rewrites an existing entry's routing.
    pub fn insert_routed(
        &self,
        hash: u64,
        cone: &Aig,
        verdict: &Verdict,
        routing: Option<RoutingInfo>,
    ) {
        self.insert_versioned(hash, cone, verdict, CACHE_ENTRY_VERSION, routing);
    }

    fn insert_versioned(
        &self,
        hash: u64,
        cone: &Aig,
        verdict: &Verdict,
        version: u32,
        routing: Option<RoutingInfo>,
    ) {
        if matches!(verdict, Verdict::Undecided) || self.capacity == 0 {
            return;
        }
        let candidates: Vec<Arc<CacheEntry>> = {
            let inner = self.lock();
            inner.buckets.get(&hash).cloned().unwrap_or_default()
        };
        // O(cone) duplicate detection runs unlocked, like lookup.
        if let Some(existing) = self.verify(&candidates, cone) {
            self.touch(&existing);
            return;
        }
        let seen: HashSet<u64> = candidates.iter().map(|e| e.id).collect();
        let entry = Arc::new(CacheEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            cone: cone.clone(),
            verdict: verdict.clone(),
            version,
            routing,
        });
        let mut inner = self.lock();
        // Entries that raced in since the snapshot are re-checked under
        // the lock; racing duplicates are rare, so this set is tiny.
        if let Some(bucket) = inner.buckets.get(&hash) {
            if bucket
                .iter()
                .any(|e| !seen.contains(&e.id) && e.cone.same_structure(cone))
            {
                return;
            }
        }
        inner.lru.push_back(entry.id, hash);
        inner.buckets.entry(hash).or_default().push(entry);
        inner.len += 1;
        while inner.len > self.capacity {
            if Self::evict_one(&mut inner) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break; // unreachable: every live entry has an LRU node
            }
        }
    }

    /// The retention bound this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found a verified entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by the LRU bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits whose entry carried [`RoutingInfo`] — lookups that pre-seeded
    /// the adaptive prover's engine routing.
    pub fn routing_hits(&self) -> u64 {
        self.routing_hits.load(Ordering::Relaxed)
    }

    /// Verified semantic-tier hits (NPN-canonical key matches that passed
    /// candidate-side verification).
    pub fn semantic_hits(&self) -> u64 {
        self.semantic_hits.load(Ordering::Relaxed)
    }

    /// Semantic records loaded from the persistent log at attach time.
    pub fn persist_loaded(&self) -> u64 {
        self.persist_loaded.load(Ordering::Relaxed)
    }

    /// Semantic records appended to the persistent log this run.
    pub fn persist_appended(&self) -> u64 {
        self.persist_appended.load(Ordering::Relaxed)
    }

    /// Cached structures currently held (structural tier).
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Settled NPN classes currently held (semantic tier).
    pub fn semantic_len(&self) -> usize {
        self.lock().semantic.len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural hits over total structural lookups; `0.0` before any
    /// lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// True when a structural verification observed the bucket lock held
    /// (see the field docs; single-threaded tests only).
    #[cfg(test)]
    fn saw_verification_under_lock(&self) -> bool {
        self.verified_under_lock
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Derives the persistable canonical-space record of a settled verdict,
/// cross-checking the engine's verdict against the signature's own truth
/// table. `None` means "don't cache this": an undecided verdict, a cex of
/// the wrong width, or an engine/table contradiction.
fn semantic_record(
    sig: &SemanticSig,
    verdict: &Verdict,
    routing: Option<RoutingInfo>,
) -> Option<PersistRecord> {
    let k = sig.canon.num_vars();
    let mut ones_witness = None;
    let mut zeros_witness = None;
    match verdict {
        Verdict::Undecided => return None,
        Verdict::Equivalent => {
            // f ≡ 0 canonicalizes to the all-zero vector (the lexicographic
            // minimum); anything else means engine and simulator disagree.
            if !sig.canon.is_zero() {
                return None;
            }
        }
        Verdict::NotEquivalent(cex) => {
            if cex.inputs().len() != k {
                return None;
            }
            // Push the engine's firing assignment into canonical space and
            // keep it as the preferred witness of its value.
            let w = crate::semantic::push_index_of(sig, cex_to_index(cex));
            if sig.canon.value(w) == sig.transform.output_neg {
                return None; // the "firing" cex doesn't fire per the table
            }
            if sig.canon.value(w) {
                ones_witness = Some(w as u64);
            } else {
                zeros_witness = Some(w as u64);
            }
        }
    }
    for i in 0..sig.canon.num_bits() {
        if ones_witness.is_some() && zeros_witness.is_some() {
            break;
        }
        if sig.canon.value(i) {
            if ones_witness.is_none() {
                ones_witness = Some(i as u64);
            }
        } else if zeros_witness.is_none() {
            zeros_witness = Some(i as u64);
        }
    }
    Some(PersistRecord {
        canon: sig.canon.masked(),
        ones_witness,
        zeros_witness,
        routing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::semantic_signature;
    use parsweep_sim::Cex;
    use proptest::prelude::*;

    fn and_cone(extra_po: bool) -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        aig.add_po(f);
        if extra_po {
            aig.add_po(!f);
        }
        aig
    }

    /// A distinct structure per `i`: a 14-gate chain whose step `b` is an
    /// AND or an OR depending on bit `b` of `i`.
    fn coded_cone(i: u64) -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let mut acc = xs[0];
        for b in 0..14 {
            acc = if (i >> b) & 1 == 1 {
                aig.and(acc, xs[1])
            } else {
                aig.or(acc, !xs[1])
            };
            // Keep every step alive so strash can't collapse the chain.
            aig.add_po(acc);
        }
        aig
    }

    #[test]
    fn insert_then_hit() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        assert_eq!(cache.lookup(hash, &cone), None);
        cache.insert(hash, &cone, &Verdict::Equivalent);
        assert_eq!(cache.lookup(hash, &cone), Some(Verdict::Equivalent));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn routed_entries_round_trip_engine_and_cost() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        let routing = RoutingInfo {
            engine: EngineKind::SatSweep,
            cost_micros: 1234,
        };
        cache.insert_routed(hash, &cone, &Verdict::Equivalent, Some(routing));
        assert_eq!(
            cache.lookup_routed(hash, &cone),
            Some((Verdict::Equivalent, Some(routing)))
        );
        assert_eq!(cache.routing_hits(), 1);
        // The legacy lookup still reads the same entry's verdict.
        assert_eq!(cache.lookup(hash, &cone), Some(Verdict::Equivalent));
        assert_eq!(cache.routing_hits(), 1, "legacy lookup never counts");
    }

    #[test]
    fn legacy_entries_carry_no_routing() {
        // A PR 3-era insert is a version-1 entry: lookup_routed finds the
        // verdict but no routing, and the routing-hit counter stays put.
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        cache.insert(hash, &cone, &Verdict::Equivalent);
        assert_eq!(
            cache.lookup_routed(hash, &cone),
            Some((Verdict::Equivalent, None))
        );
        assert_eq!(cache.routing_hits(), 0);
    }

    #[test]
    fn first_proof_keeps_its_routing_on_duplicate_routed_insert() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        let first = RoutingInfo {
            engine: EngineKind::ExhaustivePo,
            cost_micros: 10,
        };
        cache.insert_routed(hash, &cone, &Verdict::Equivalent, Some(first));
        let second = RoutingInfo {
            engine: EngineKind::SatSweep,
            cost_micros: 99,
        };
        cache.insert_routed(hash, &cone, &Verdict::Equivalent, Some(second));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.lookup_routed(hash, &cone),
            Some((Verdict::Equivalent, Some(first)))
        );
    }

    #[test]
    fn undecided_is_never_cached() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        cache.insert(hash, &cone, &Verdict::Undecided);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(hash, &cone), None);
    }

    #[test]
    fn colliding_hash_is_verified_by_structure() {
        // Force two different structures into one bucket: a lookup for
        // the second must not return the first's verdict.
        let cache = ResultCache::new();
        let a = and_cone(false);
        let b = and_cone(true);
        let fake_hash = 42;
        cache.insert(fake_hash, &a, &Verdict::Equivalent);
        assert_eq!(cache.lookup(fake_hash, &b), None);
        cache.insert(fake_hash, &b, &Verdict::Equivalent);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(fake_hash, &b), Some(Verdict::Equivalent));
    }

    #[test]
    fn first_proof_wins_on_duplicate_insert() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        cache.insert(hash, &cone, &Verdict::Equivalent);
        cache.insert(
            hash,
            &cone,
            &Verdict::NotEquivalent(parsweep_sim::Cex::new(vec![true, true])),
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(hash, &cone), Some(Verdict::Equivalent));
    }

    #[test]
    fn capacity_bound_holds_under_churn() {
        // 10k distinct cones through a 64-entry cache: the bound must
        // hold at every step and evictions must account for the rest.
        let capacity = 64;
        let total = 10_000u64;
        let cache = ResultCache::with_capacity(capacity);
        for i in 0..total {
            let cone = coded_cone(i);
            cache.insert(cone.structural_hash(), &cone, &Verdict::Equivalent);
            if i % 512 == 0 {
                assert!(cache.len() <= capacity, "len {} at i={i}", cache.len());
            }
        }
        assert_eq!(cache.len(), capacity);
        assert_eq!(cache.evictions(), total - capacity as u64);
        // Pure insert churn is FIFO = LRU: the last `capacity` cones are
        // resident, the one before them is not.
        let evicted = coded_cone(total - capacity as u64 - 1);
        assert_eq!(cache.lookup(evicted.structural_hash(), &evicted), None);
        for i in (total - capacity as u64)..total {
            let cone = coded_cone(i);
            assert!(
                cache.lookup(cone.structural_hash(), &cone).is_some(),
                "recent cone {i} must be resident"
            );
        }
    }

    #[test]
    fn lru_prefers_recently_touched() {
        let cache = ResultCache::with_capacity(2);
        let (a, b, c) = (coded_cone(1), coded_cone(2), coded_cone(3));
        cache.insert(a.structural_hash(), &a, &Verdict::Equivalent);
        cache.insert(b.structural_hash(), &b, &Verdict::Equivalent);
        // Touch a: b becomes the LRU victim.
        assert!(cache.lookup(a.structural_hash(), &a).is_some());
        cache.insert(c.structural_hash(), &c, &Verdict::Equivalent);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(a.structural_hash(), &a).is_some());
        assert_eq!(cache.lookup(b.structural_hash(), &b), None);
        assert!(cache.lookup(c.structural_hash(), &c).is_some());
    }

    #[test]
    fn duplicate_insert_counts_as_a_touch() {
        // Re-inserting a resident structure must refresh its recency —
        // the LRU-list equivalent of the old lazy-stamp touch.
        let cache = ResultCache::with_capacity(2);
        let (a, b, c) = (coded_cone(1), coded_cone(2), coded_cone(3));
        cache.insert(a.structural_hash(), &a, &Verdict::Equivalent);
        cache.insert(b.structural_hash(), &b, &Verdict::Equivalent);
        cache.insert(a.structural_hash(), &a, &Verdict::Equivalent); // touch
        cache.insert(c.structural_hash(), &c, &Verdict::Equivalent);
        assert!(cache.lookup(a.structural_hash(), &a).is_some());
        assert_eq!(cache.lookup(b.structural_hash(), &b), None, "b was LRU");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::with_capacity(0);
        let cone = and_cone(false);
        cache.insert(cone.structural_hash(), &cone, &Verdict::Equivalent);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(cone.structural_hash(), &cone), None);
        assert_eq!(cache.evictions(), 0);
        // The semantic tier is disabled too.
        let sig = semantic_signature(&cone, 6).unwrap();
        assert!(!cache.insert_semantic(
            &sig,
            &Verdict::NotEquivalent(Cex::new(vec![true, true])),
            None
        ));
        assert_eq!(cache.semantic_len(), 0);
    }

    #[test]
    fn hot_bucket_probe_verifies_outside_lock() {
        // The lock-contention regression check, timing-insensitive: every
        // structural verification asserts (via try_lock) that the bucket
        // mutex is free when verification begins. Deterministic in a
        // single-threaded test — if lookup or insert ever moves
        // `same_structure` back under the lock, the probe trips.
        let cache = ResultCache::new();
        let fake_hash = 7; // one hot bucket with several entries
        for i in 0..8 {
            cache.insert(fake_hash, &coded_cone(i), &Verdict::Equivalent);
        }
        for i in 0..8 {
            assert!(cache.lookup(fake_hash, &coded_cone(i)).is_some());
        }
        // Duplicate inserts verify too.
        cache.insert(fake_hash, &coded_cone(3), &Verdict::Equivalent);
        assert!(
            !cache.saw_verification_under_lock(),
            "same_structure ran while the bucket lock was held"
        );
    }

    #[test]
    fn concurrent_churn_keeps_bound_and_verdicts() {
        let capacity = 32;
        let cache = ResultCache::with_capacity(capacity);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..500u64 {
                        let cone = coded_cone((t * 500 + i) % 96);
                        let hash = cone.structural_hash();
                        if let Some(v) = cache.lookup(hash, &cone) {
                            assert_eq!(v, Verdict::Equivalent);
                        } else {
                            cache.insert(hash, &cone, &Verdict::Equivalent);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= capacity, "len {}", cache.len());
        assert!(cache.hits() + cache.misses() >= 2000);
    }

    #[test]
    fn concurrent_double_insert_collapses_to_one_entry() {
        // Many workers miss on the same cone and all insert their proof:
        // exactly one entry must survive (first proof wins), and its
        // verdict must be the one subsequent lookups see.
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (cache, cone) = (&cache, &cone);
                s.spawn(move || {
                    for _ in 0..200 {
                        cache.insert_routed(
                            hash,
                            cone,
                            &Verdict::Equivalent,
                            Some(RoutingInfo {
                                engine: EngineKind::ExhaustivePo,
                                cost_micros: 1,
                            }),
                        );
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1, "racing duplicates must dedupe");
        assert_eq!(cache.lookup(hash, &cone), Some(Verdict::Equivalent));
    }

    fn single_po_cone(seed: u64) -> Aig {
        // A small single-PO cone with structure varying by seed.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let mut acc = if seed & 1 == 1 { xs[0] } else { !xs[0] };
        for b in 1..6 {
            let x = xs[(seed as usize + b) % 3];
            acc = if (seed >> b) & 1 == 1 {
                aig.and(acc, x)
            } else {
                aig.or(acc, !x)
            };
        }
        aig.add_po(acc);
        aig
    }

    fn ground_truth(cone: &Aig) -> Verdict {
        for i in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|j| i >> j & 1 == 1).collect();
            if cone.eval(&bits)[0] {
                return Verdict::NotEquivalent(Cex::new(bits));
            }
        }
        Verdict::Equivalent
    }

    #[test]
    fn semantic_hit_serves_npn_equivalent_cone_with_firing_cex() {
        let cache = ResultCache::new();
        // f = a & b & !c inserted; g = (a & !c) & (b & !c) probes: a
        // redundant decomposition — different structure, same function.
        let mut f = Aig::new();
        let xs = f.add_inputs(3);
        let t = f.and(xs[0], xs[1]);
        let t = f.and(t, !xs[2]);
        f.add_po(t);
        let mut g = Aig::new();
        let ys = g.add_inputs(3);
        let u1 = g.and(ys[0], !ys[2]);
        let u2 = g.and(ys[1], !ys[2]);
        let u = g.and(u1, u2);
        g.add_po(u);
        assert!(!f.same_structure(&g));
        let sig_f = semantic_signature(&f, 6).unwrap();
        let sig_g = semantic_signature(&g, 6).unwrap();
        assert_eq!(sig_f.key, sig_g.key);
        let truth = ground_truth(&f);
        assert!(cache.insert_semantic(&sig_f, &truth, None));
        let (verdict, _) = cache.lookup_semantic(&g, &sig_g).expect("semantic hit");
        match verdict {
            Verdict::NotEquivalent(cex) => assert!(cex.fires(&g)),
            v => panic!("expected a firing cex, got {v:?}"),
        }
        assert_eq!(cache.semantic_hits(), 1);
    }

    proptest::proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Forced-collision soundness: two different structures inserted
        /// under the SAME structural key never cross-serve.
        #[test]
        fn forced_structural_collision_never_cross_serves(sa in 0..16384u64, sb in 0..16384u64) {
            let (a, b) = (coded_cone(sa), coded_cone(sb));
            let cache = ResultCache::new();
            let forced = 0xDEAD; // same bucket for both
            cache.insert(forced, &a, &Verdict::Equivalent);
            let cex = Verdict::NotEquivalent(Cex::new(vec![true, true]));
            cache.insert(forced, &b, &cex);
            let va = cache.lookup(forced, &a);
            let vb = cache.lookup(forced, &b);
            prop_assert_eq!(va, Some(Verdict::Equivalent));
            if a.same_structure(&b) {
                prop_assert_eq!(vb, Some(Verdict::Equivalent), "dup keeps first proof");
            } else {
                prop_assert_eq!(vb, Some(cex));
            }
        }

        /// Semantic round trip: settle one random cone, probe NPN-distinct
        /// random cones; every hit must agree with the probe's own ground
        /// truth and any cex must fire on the probing cone.
        #[test]
        fn semantic_hits_always_match_ground_truth(seed_a in 0..4096u64, seed_b in 0..4096u64) {
            let (a, b) = (single_po_cone(seed_a), single_po_cone(seed_b));
            let cache = ResultCache::new();
            let sig_a = semantic_signature(&a, 6).unwrap();
            let sig_b = semantic_signature(&b, 6).unwrap();
            cache.insert_semantic(&sig_a, &ground_truth(&a), None);
            if let Some((verdict, _)) = cache.lookup_semantic(&b, &sig_b) {
                match (verdict, ground_truth(&b)) {
                    (Verdict::Equivalent, Verdict::Equivalent) => {}
                    (Verdict::NotEquivalent(cex), Verdict::NotEquivalent(_)) => {
                        prop_assert!(cex.fires(&b), "served cex must fire");
                    }
                    (got, want) => prop_assert!(false, "served {got:?}, truth {want:?}"),
                }
            } else {
                // A miss is only legal when the classes truly differ.
                prop_assert_ne!(sig_a.key, sig_b.key);
            }
        }
    }

    #[test]
    fn persisted_corpus_survives_restart_and_tolerates_garbage() {
        let dir =
            std::env::temp_dir().join(format!("parsweep-cache-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.log");
        std::fs::remove_file(&path).ok();

        // First service lifetime: settle two classes.
        let mut cache = ResultCache::new();
        cache.attach_persist(&path).unwrap();
        let (a, b) = (single_po_cone(3), single_po_cone(21));
        let sig_a = semantic_signature(&a, 6).unwrap();
        let sig_b = semantic_signature(&b, 6).unwrap();
        assert!(cache.insert_semantic(&sig_a, &ground_truth(&a), None));
        let fresh_b = cache.insert_semantic(&sig_b, &ground_truth(&b), None);
        let appended = cache.persist_appended();
        assert_eq!(appended, 1 + fresh_b as u64);
        drop(cache);

        // Corrupt the tail, as a crash mid-append would.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"sem1 3 f").unwrap();
        drop(f);

        // Second lifetime: the corpus is back, the torn line is skipped,
        // and a probe settles from disk without any engine run.
        let mut cache2 = ResultCache::new();
        let summary = cache2.attach_persist(&path).unwrap();
        assert_eq!(summary.loaded as u64, appended);
        assert_eq!(summary.skipped, 1);
        assert_eq!(cache2.persist_loaded(), appended);
        let (verdict, _) = cache2.lookup_semantic(&a, &sig_a).expect("hit from disk");
        match (verdict, ground_truth(&a)) {
            (Verdict::Equivalent, Verdict::Equivalent) => {}
            (Verdict::NotEquivalent(cex), Verdict::NotEquivalent(_)) => {
                assert!(cex.fires(&a));
            }
            (got, want) => panic!("served {got:?}, truth {want:?}"),
        }
        // Re-settling a loaded class is not fresh: nothing re-appends.
        assert!(!cache2.insert_semantic(&sig_a, &ground_truth(&a), None));
        assert_eq!(cache2.persist_appended(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn forged_persisted_entry_cannot_flip_a_verdict() {
        // Adversarial corpus: a record whose canonical table matches a
        // real class but whose witnesses lie. The loader rejects
        // self-inconsistent records outright; a record that is internally
        // consistent but belongs to a different function simply never
        // matches a probe key. Either way: miss, not a wrong verdict.
        let dir =
            std::env::temp_dir().join(format!("parsweep-cache-forged-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.log");
        // AND2's canonical class is satisfiable, but this record claims
        // "constant zero" (ones witness '-'): self-inconsistent → skipped.
        let mut probe = Aig::new();
        let xs = probe.add_inputs(2);
        let f = probe.and(xs[0], xs[1]);
        probe.add_po(f);
        let sig = semantic_signature(&probe, 6).unwrap();
        let hex = sig.canon.to_hex();
        std::fs::write(&path, format!("sem1 2 {hex} - 0\n")).unwrap();
        let mut cache = ResultCache::new();
        let summary = cache.attach_persist(&path).unwrap();
        assert_eq!((summary.loaded, summary.skipped), (0, 1));
        assert_eq!(cache.lookup_semantic(&probe, &sig), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn semantic_tier_is_capacity_bounded() {
        let cache = ResultCache::with_capacity(4);
        let mut inserted = 0;
        for seed in 0..64u64 {
            let cone = single_po_cone(seed);
            let sig = semantic_signature(&cone, 6).unwrap();
            if cache.insert_semantic(&sig, &ground_truth(&cone), None) {
                inserted += 1;
            }
            assert!(cache.semantic_len() <= 4);
        }
        assert!(inserted > 4, "need churn to exercise the bound");
        assert_eq!(cache.semantic_len(), 4);
    }
}

//! Structural-hash result cache: proved cones are proved forever — but
//! not *kept* forever.
//!
//! Service traffic repeats itself — regression reruns, `double`d
//! benchmarks, shared IP blocks — and an extracted cone's verdict depends
//! only on its structure. The cache keys on
//! [`Aig::structural_hash`](parsweep_aig::Aig::structural_hash) and
//! verifies every candidate with
//! [`Aig::same_structure`](parsweep_aig::Aig::same_structure), so a
//! 64-bit hash collision can cost a probe but never a wrong verdict.
//!
//! Two properties matter for a long-lived service:
//!
//! * **Bounded residency.** Entries beyond [`ResultCache::capacity`] are
//!   evicted least-recently-used (lazily: a recency queue of
//!   `(entry, stamp)` records is popped until a record matches its
//!   entry's latest stamp — touched entries leave stale records behind
//!   instead of paying an O(n) scan per touch). Evictions are counted and
//!   surfaced in the service stats and metrics snapshot.
//! * **Verification outside the lock.** `same_structure` is O(cone); the
//!   old implementation ran it *inside* the single bucket mutex, so two
//!   workers probing one hot bucket serialized on each other's structural
//!   walks. Now `lookup`/`insert` clone the candidate `Arc`s under the
//!   lock, release it, verify, and re-lock only for the O(1) bookkeeping
//!   (`insert` re-checks entries that raced in since the snapshot, so
//!   duplicate proofs still collapse to one entry — first proof wins).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use parsweep_aig::Aig;
use parsweep_sat::{EngineKind, Verdict};

/// Default [`ResultCache::capacity`]: distinct cone structures retained.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Entry format version written by this build. Version 1 entries (the
/// original cache) carry a verdict only; version 2 adds [`RoutingInfo`]
/// so a hit can pre-seed the adaptive prover's difficulty model. Old
/// callers keep using [`ResultCache::insert`]/[`ResultCache::lookup`],
/// which read and write the version-1 subset unchanged.
pub const CACHE_ENTRY_VERSION: u32 = 2;

/// How a cached verdict was won: the deciding engine and its cost. A
/// routed cache hit replays this into the adaptive prover's difficulty
/// model, so a restarted or cold dispatcher starts from the fleet's
/// history instead of static priors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutingInfo {
    /// Engine that decided the cone.
    pub engine: EngineKind,
    /// Wall-clock cost of the winning attempt, in microseconds.
    pub cost_micros: u64,
}

/// A concurrent, capacity-bounded map from canonical cone structure to
/// settled verdict.
///
/// Only *decided* verdicts are stored: `Equivalent`, or `NotEquivalent`
/// with a counter-example over the *cone's own* PIs (the caller lifts it
/// through the extraction's PI map). `Undecided` — including
/// deadline-cancelled partial runs — is never cached, so an early abort
/// cannot poison later, better-budgeted attempts.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    next_id: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    routing_hits: AtomicU64,
    /// Set when a structural verification began while the bucket lock was
    /// held — the timing-insensitive regression probe for the
    /// verify-outside-the-lock contract (meaningful in single-threaded
    /// tests only; under concurrency another thread's bookkeeping can
    /// hold the lock legitimately).
    #[cfg(test)]
    verified_under_lock: std::sync::atomic::AtomicBool,
}

#[derive(Debug, Default)]
struct CacheInner {
    buckets: HashMap<u64, Vec<Arc<CacheEntry>>>,
    /// Total entries across buckets (kept incrementally; `buckets` values
    /// are never empty).
    len: usize,
    /// Logical recency clock; bumped on every insert and touch.
    tick: u64,
    /// Lazy LRU queue, oldest first. A record is live only while its
    /// `stamp` equals the entry's `last_used`.
    recency: VecDeque<RecencyRecord>,
}

#[derive(Debug)]
struct RecencyRecord {
    hash: u64,
    id: u64,
    stamp: u64,
}

#[derive(Debug)]
struct CacheEntry {
    id: u64,
    cone: Aig,
    verdict: Verdict,
    /// Format version this entry was written with; routing is only
    /// present from version 2 on.
    version: u32,
    routing: Option<RoutingInfo>,
    last_used: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// An empty cache with the [`DEFAULT_CACHE_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty cache retaining at most `capacity` cone structures
    /// (capacity 0 disables caching: inserts are dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
            next_id: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            routing_hits: AtomicU64::new(0),
            #[cfg(test)]
            verified_under_lock: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Structural verification of bucket candidates, run with the bucket
    /// lock *released* — this is the O(cone) part of every probe, and the
    /// reason hot buckets no longer serialize workers.
    fn verify(&self, candidates: &[Arc<CacheEntry>], cone: &Aig) -> Option<Arc<CacheEntry>> {
        #[cfg(test)]
        if !candidates.is_empty() && self.inner.try_lock().is_err() {
            self.verified_under_lock
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
        candidates
            .iter()
            .find(|e| e.cone.same_structure(cone))
            .cloned()
    }

    /// Bumps an entry's recency (O(1) under the lock; stale queue records
    /// are skipped lazily at eviction time).
    fn touch(&self, hash: u64, entry: &CacheEntry) {
        let mut inner = self.lock();
        inner.tick += 1;
        let stamp = inner.tick;
        entry.last_used.store(stamp, Ordering::Relaxed);
        inner.recency.push_back(RecencyRecord {
            hash,
            id: entry.id,
            stamp,
        });
        Self::compact(&mut inner);
    }

    /// Drops stale recency records once the queue outgrows the live set,
    /// keeping queue memory O(len) amortized.
    fn compact(inner: &mut CacheInner) {
        if inner.recency.len() <= inner.len * 2 + 64 {
            return;
        }
        let live: HashMap<u64, u64> = inner
            .buckets
            .values()
            .flatten()
            .map(|e| (e.id, e.last_used.load(Ordering::Relaxed)))
            .collect();
        inner.recency.retain(|r| live.get(&r.id) == Some(&r.stamp));
    }

    /// Evicts the least-recently-used entry; false when nothing is left.
    fn evict_one(inner: &mut CacheInner) -> bool {
        while let Some(rec) = inner.recency.pop_front() {
            let Some(bucket) = inner.buckets.get_mut(&rec.hash) else {
                continue;
            };
            let Some(pos) = bucket.iter().position(|e| e.id == rec.id) else {
                continue;
            };
            if bucket[pos].last_used.load(Ordering::Relaxed) != rec.stamp {
                continue; // touched since this record: a fresher one exists
            }
            bucket.swap_remove(pos);
            if bucket.is_empty() {
                inner.buckets.remove(&rec.hash);
            }
            inner.len -= 1;
            return true;
        }
        false
    }

    /// The verified-hit path shared by [`lookup`](Self::lookup) and
    /// [`lookup_routed`](Self::lookup_routed): candidates snapshot under
    /// the lock, structural verification outside it, hit/miss accounting
    /// and recency touch.
    fn lookup_entry(&self, hash: u64, cone: &Aig) -> Option<Arc<CacheEntry>> {
        let candidates: Vec<Arc<CacheEntry>> = {
            let inner = self.lock();
            inner.buckets.get(&hash).cloned().unwrap_or_default()
        };
        match self.verify(&candidates, cone) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(hash, &entry);
                Some(entry)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up a cone by its structural hash, verifying structure
    /// exactly (outside the bucket lock). Counts a hit or a miss; a hit
    /// refreshes the entry's recency.
    pub fn lookup(&self, hash: u64, cone: &Aig) -> Option<Verdict> {
        self.lookup_entry(hash, cone).map(|e| e.verdict.clone())
    }

    /// Like [`lookup`](Self::lookup), but also returns the entry's
    /// [`RoutingInfo`] when one was recorded (version-2 entries written
    /// by [`insert_routed`](Self::insert_routed)). A hit that carries
    /// routing counts toward [`routing_hits`](Self::routing_hits).
    pub fn lookup_routed(&self, hash: u64, cone: &Aig) -> Option<(Verdict, Option<RoutingInfo>)> {
        let entry = self.lookup_entry(hash, cone)?;
        let routing = if entry.version >= 2 {
            entry.routing
        } else {
            None
        };
        if routing.is_some() {
            self.routing_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some((entry.verdict.clone(), routing))
    }

    /// Records a settled verdict for a cone, evicting least-recently-used
    /// entries beyond capacity. `Undecided` is ignored, as is a duplicate
    /// of an already-cached structure (first proof wins; the duplicate
    /// counts as a recency touch). Writes a version-1 entry — the format
    /// this cache shipped with — so pre-routing callers are bit-for-bit
    /// unchanged.
    pub fn insert(&self, hash: u64, cone: &Aig, verdict: &Verdict) {
        self.insert_versioned(hash, cone, verdict, 1, None);
    }

    /// Records a settled verdict together with how it was won. Writes a
    /// [`CACHE_ENTRY_VERSION`] entry whose routing a later
    /// [`lookup_routed`](Self::lookup_routed) replays into the prover's
    /// difficulty model. First proof wins: a duplicate insert never
    /// rewrites an existing entry's routing.
    pub fn insert_routed(
        &self,
        hash: u64,
        cone: &Aig,
        verdict: &Verdict,
        routing: Option<RoutingInfo>,
    ) {
        self.insert_versioned(hash, cone, verdict, CACHE_ENTRY_VERSION, routing);
    }

    fn insert_versioned(
        &self,
        hash: u64,
        cone: &Aig,
        verdict: &Verdict,
        version: u32,
        routing: Option<RoutingInfo>,
    ) {
        if matches!(verdict, Verdict::Undecided) || self.capacity == 0 {
            return;
        }
        let candidates: Vec<Arc<CacheEntry>> = {
            let inner = self.lock();
            inner.buckets.get(&hash).cloned().unwrap_or_default()
        };
        // O(cone) duplicate detection runs unlocked, like lookup.
        if let Some(existing) = self.verify(&candidates, cone) {
            self.touch(hash, &existing);
            return;
        }
        let seen: HashSet<u64> = candidates.iter().map(|e| e.id).collect();
        let entry = Arc::new(CacheEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            cone: cone.clone(),
            verdict: verdict.clone(),
            version,
            routing,
            last_used: AtomicU64::new(0),
        });
        let mut inner = self.lock();
        // Entries that raced in since the snapshot are re-checked under
        // the lock; racing duplicates are rare, so this set is tiny.
        if let Some(bucket) = inner.buckets.get(&hash) {
            if bucket
                .iter()
                .any(|e| !seen.contains(&e.id) && e.cone.same_structure(cone))
            {
                return;
            }
        }
        inner.tick += 1;
        let stamp = inner.tick;
        entry.last_used.store(stamp, Ordering::Relaxed);
        inner.recency.push_back(RecencyRecord {
            hash,
            id: entry.id,
            stamp,
        });
        inner.buckets.entry(hash).or_default().push(entry);
        inner.len += 1;
        while inner.len > self.capacity {
            if Self::evict_one(&mut inner) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break; // unreachable: every live entry has a live record
            }
        }
        Self::compact(&mut inner);
    }

    /// The retention bound this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found a verified entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by the LRU bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits whose entry carried [`RoutingInfo`] — lookups that pre-seeded
    /// the adaptive prover's engine routing.
    pub fn routing_hits(&self) -> u64 {
        self.routing_hits.load(Ordering::Relaxed)
    }

    /// Cached structures currently held.
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits over total lookups; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// True when a structural verification observed the bucket lock held
    /// (see the field docs; single-threaded tests only).
    #[cfg(test)]
    fn saw_verification_under_lock(&self) -> bool {
        self.verified_under_lock
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_cone(extra_po: bool) -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        aig.add_po(f);
        if extra_po {
            aig.add_po(!f);
        }
        aig
    }

    /// A distinct structure per `i`: a 14-gate chain whose step `b` is an
    /// AND or an OR depending on bit `b` of `i`.
    fn coded_cone(i: u64) -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let mut acc = xs[0];
        for b in 0..14 {
            acc = if (i >> b) & 1 == 1 {
                aig.and(acc, xs[1])
            } else {
                aig.or(acc, !xs[1])
            };
            // Keep every step alive so strash can't collapse the chain.
            aig.add_po(acc);
        }
        aig
    }

    #[test]
    fn insert_then_hit() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        assert_eq!(cache.lookup(hash, &cone), None);
        cache.insert(hash, &cone, &Verdict::Equivalent);
        assert_eq!(cache.lookup(hash, &cone), Some(Verdict::Equivalent));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn routed_entries_round_trip_engine_and_cost() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        let routing = RoutingInfo {
            engine: EngineKind::SatSweep,
            cost_micros: 1234,
        };
        cache.insert_routed(hash, &cone, &Verdict::Equivalent, Some(routing));
        assert_eq!(
            cache.lookup_routed(hash, &cone),
            Some((Verdict::Equivalent, Some(routing)))
        );
        assert_eq!(cache.routing_hits(), 1);
        // The legacy lookup still reads the same entry's verdict.
        assert_eq!(cache.lookup(hash, &cone), Some(Verdict::Equivalent));
        assert_eq!(cache.routing_hits(), 1, "legacy lookup never counts");
    }

    #[test]
    fn legacy_entries_carry_no_routing() {
        // A PR 3-era insert is a version-1 entry: lookup_routed finds the
        // verdict but no routing, and the routing-hit counter stays put.
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        cache.insert(hash, &cone, &Verdict::Equivalent);
        assert_eq!(
            cache.lookup_routed(hash, &cone),
            Some((Verdict::Equivalent, None))
        );
        assert_eq!(cache.routing_hits(), 0);
    }

    #[test]
    fn first_proof_keeps_its_routing_on_duplicate_routed_insert() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        let first = RoutingInfo {
            engine: EngineKind::ExhaustivePo,
            cost_micros: 10,
        };
        cache.insert_routed(hash, &cone, &Verdict::Equivalent, Some(first));
        let second = RoutingInfo {
            engine: EngineKind::SatSweep,
            cost_micros: 99,
        };
        cache.insert_routed(hash, &cone, &Verdict::Equivalent, Some(second));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.lookup_routed(hash, &cone),
            Some((Verdict::Equivalent, Some(first)))
        );
    }

    #[test]
    fn undecided_is_never_cached() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        cache.insert(hash, &cone, &Verdict::Undecided);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(hash, &cone), None);
    }

    #[test]
    fn colliding_hash_is_verified_by_structure() {
        // Force two different structures into one bucket: a lookup for
        // the second must not return the first's verdict.
        let cache = ResultCache::new();
        let a = and_cone(false);
        let b = and_cone(true);
        let fake_hash = 42;
        cache.insert(fake_hash, &a, &Verdict::Equivalent);
        assert_eq!(cache.lookup(fake_hash, &b), None);
        cache.insert(fake_hash, &b, &Verdict::Equivalent);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(fake_hash, &b), Some(Verdict::Equivalent));
    }

    #[test]
    fn first_proof_wins_on_duplicate_insert() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        cache.insert(hash, &cone, &Verdict::Equivalent);
        cache.insert(
            hash,
            &cone,
            &Verdict::NotEquivalent(parsweep_sim::Cex::new(vec![true, true])),
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(hash, &cone), Some(Verdict::Equivalent));
    }

    #[test]
    fn capacity_bound_holds_under_churn() {
        // 10k distinct cones through a 64-entry cache: the bound must
        // hold at every step and evictions must account for the rest.
        let capacity = 64;
        let total = 10_000u64;
        let cache = ResultCache::with_capacity(capacity);
        for i in 0..total {
            let cone = coded_cone(i);
            cache.insert(cone.structural_hash(), &cone, &Verdict::Equivalent);
            if i % 512 == 0 {
                assert!(cache.len() <= capacity, "len {} at i={i}", cache.len());
            }
        }
        assert_eq!(cache.len(), capacity);
        assert_eq!(cache.evictions(), total - capacity as u64);
        // Pure insert churn is FIFO = LRU: the last `capacity` cones are
        // resident, the one before them is not.
        let evicted = coded_cone(total - capacity as u64 - 1);
        assert_eq!(cache.lookup(evicted.structural_hash(), &evicted), None);
        for i in (total - capacity as u64)..total {
            let cone = coded_cone(i);
            assert!(
                cache.lookup(cone.structural_hash(), &cone).is_some(),
                "recent cone {i} must be resident"
            );
        }
    }

    #[test]
    fn lru_prefers_recently_touched() {
        let cache = ResultCache::with_capacity(2);
        let (a, b, c) = (coded_cone(1), coded_cone(2), coded_cone(3));
        cache.insert(a.structural_hash(), &a, &Verdict::Equivalent);
        cache.insert(b.structural_hash(), &b, &Verdict::Equivalent);
        // Touch a: b becomes the LRU victim.
        assert!(cache.lookup(a.structural_hash(), &a).is_some());
        cache.insert(c.structural_hash(), &c, &Verdict::Equivalent);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(a.structural_hash(), &a).is_some());
        assert_eq!(cache.lookup(b.structural_hash(), &b), None);
        assert!(cache.lookup(c.structural_hash(), &c).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::with_capacity(0);
        let cone = and_cone(false);
        cache.insert(cone.structural_hash(), &cone, &Verdict::Equivalent);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(cone.structural_hash(), &cone), None);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn hot_bucket_probe_verifies_outside_lock() {
        // The lock-contention regression check, timing-insensitive: every
        // structural verification asserts (via try_lock) that the bucket
        // mutex is free when verification begins. Deterministic in a
        // single-threaded test — if lookup or insert ever moves
        // `same_structure` back under the lock, the probe trips.
        let cache = ResultCache::new();
        let fake_hash = 7; // one hot bucket with several entries
        for i in 0..8 {
            cache.insert(fake_hash, &coded_cone(i), &Verdict::Equivalent);
        }
        for i in 0..8 {
            assert!(cache.lookup(fake_hash, &coded_cone(i)).is_some());
        }
        // Duplicate inserts verify too.
        cache.insert(fake_hash, &coded_cone(3), &Verdict::Equivalent);
        assert!(
            !cache.saw_verification_under_lock(),
            "same_structure ran while the bucket lock was held"
        );
    }

    #[test]
    fn concurrent_churn_keeps_bound_and_verdicts() {
        let capacity = 32;
        let cache = ResultCache::with_capacity(capacity);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..500u64 {
                        let cone = coded_cone((t * 500 + i) % 96);
                        let hash = cone.structural_hash();
                        if let Some(v) = cache.lookup(hash, &cone) {
                            assert_eq!(v, Verdict::Equivalent);
                        } else {
                            cache.insert(hash, &cone, &Verdict::Equivalent);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= capacity, "len {}", cache.len());
        assert!(cache.hits() + cache.misses() >= 2000);
    }
}

//! Structural-hash result cache: proved cones are proved forever.
//!
//! Service traffic repeats itself — regression reruns, `double`d
//! benchmarks, shared IP blocks — and an extracted cone's verdict depends
//! only on its structure. The cache keys on
//! [`Aig::structural_hash`](parsweep_aig::Aig::structural_hash) and
//! verifies every candidate with
//! [`Aig::same_structure`](parsweep_aig::Aig::same_structure), so a
//! 64-bit hash collision can cost a probe but never a wrong verdict.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use parsweep_aig::Aig;
use parsweep_sat::Verdict;

/// A concurrent map from canonical cone structure to settled verdict.
///
/// Only *decided* verdicts are stored: `Equivalent`, or `NotEquivalent`
/// with a counter-example over the *cone's own* PIs (the caller lifts it
/// through the extraction's PI map). `Undecided` — including
/// deadline-cancelled partial runs — is never cached, so an early abort
/// cannot poison later, better-budgeted attempts.
#[derive(Debug, Default)]
pub struct ResultCache {
    buckets: Mutex<HashMap<u64, Vec<CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct CacheEntry {
    cone: Aig,
    verdict: Verdict,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Looks up a cone by its structural hash, verifying structure
    /// exactly. Counts a hit or a miss.
    pub fn lookup(&self, hash: u64, cone: &Aig) -> Option<Verdict> {
        let buckets = self.buckets.lock().unwrap();
        let found = buckets
            .get(&hash)
            .and_then(|entries| entries.iter().find(|e| e.cone.same_structure(cone)))
            .map(|e| e.verdict.clone());
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a settled verdict for a cone. `Undecided` is ignored, as
    /// is a duplicate of an already-cached structure (first proof wins).
    pub fn insert(&self, hash: u64, cone: &Aig, verdict: &Verdict) {
        if matches!(verdict, Verdict::Undecided) {
            return;
        }
        let mut buckets = self.buckets.lock().unwrap();
        let entries = buckets.entry(hash).or_default();
        if entries.iter().any(|e| e.cone.same_structure(cone)) {
            return;
        }
        entries.push(CacheEntry {
            cone: cone.clone(),
            verdict: verdict.clone(),
        });
    }

    /// Lookups that found a verified entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached structures currently held.
    pub fn len(&self) -> usize {
        self.buckets.lock().unwrap().values().map(Vec::len).sum()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits over total lookups; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_cone(extra_po: bool) -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        aig.add_po(f);
        if extra_po {
            aig.add_po(!f);
        }
        aig
    }

    #[test]
    fn insert_then_hit() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        assert_eq!(cache.lookup(hash, &cone), None);
        cache.insert(hash, &cone, &Verdict::Equivalent);
        assert_eq!(cache.lookup(hash, &cone), Some(Verdict::Equivalent));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn undecided_is_never_cached() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        cache.insert(hash, &cone, &Verdict::Undecided);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(hash, &cone), None);
    }

    #[test]
    fn colliding_hash_is_verified_by_structure() {
        // Force two different structures into one bucket: a lookup for
        // the second must not return the first's verdict.
        let cache = ResultCache::new();
        let a = and_cone(false);
        let b = and_cone(true);
        let fake_hash = 42;
        cache.insert(fake_hash, &a, &Verdict::Equivalent);
        assert_eq!(cache.lookup(fake_hash, &b), None);
        cache.insert(fake_hash, &b, &Verdict::Equivalent);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(fake_hash, &b), Some(Verdict::Equivalent));
    }

    #[test]
    fn first_proof_wins_on_duplicate_insert() {
        let cache = ResultCache::new();
        let cone = and_cone(false);
        let hash = cone.structural_hash();
        cache.insert(hash, &cone, &Verdict::Equivalent);
        cache.insert(
            hash,
            &cone,
            &Verdict::NotEquivalent(parsweep_sim::Cex::new(vec![true, true])),
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(hash, &cone), Some(Verdict::Equivalent));
    }
}

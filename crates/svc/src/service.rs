//! The CEC job service: submit miters, collect verdicts.
//!
//! Each submitted miter is sharded into output-cone sub-jobs
//! ([`crate::shard`]), which a work-stealing pool ([`crate::pool`])
//! drives through the `parsweep-core` engine on per-worker executors.
//! Every shard first consults the structural result cache
//! ([`crate::cache`]); per-job [`CancelToken`]s carry deadlines and
//! client cancellations into the engine's phase boundaries, so a job
//! that runs out of time settles promptly on a *partial* — never wrong —
//! verdict.
//!
//! The service is the shared core of both front-ends: the single-client
//! stdin loop (`svc` binary) and the multi-client TCP server
//! (`parsweep-net`). Jobs carry [`SubmitOpts`] — a priority [`Lane`]
//! and a client id — so the pool can drain lanes fairly and the service
//! can report per-client effort ([`ClientStats`]). Cone shards below
//! [`SvcConfig::fuse_threshold`] nodes are *fused*: batched into one
//! pooled dispatch so tiny jobs stop paying per-shard scheduling
//! overhead (verdicts are unchanged — each cone still proves
//! separately, on one worker, inside the fused dispatch).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use parsweep_aig::{Aig, Var};
use parsweep_core::{
    build_prover, combined_check_cancellable, combined_check_with_prover, sim_sweep_cancellable,
    CombinedConfig, EngineConfig,
};
use parsweep_par::{CancelToken, Executor, LaunchStats};
use parsweep_sat::{
    EngineKind, PortfolioConfig, ProveOutcome, Prover, ProverConfig, ProverMode, SweepConfig,
    Verdict,
};
use parsweep_sim::Cex;
use parsweep_trace as trace;
use parsweep_trace::metrics::{
    render_counter, render_gauge, render_histogram, render_labeled_counter, Histogram,
};
use parsweep_trace::Clock;

use crate::cache::{ResultCache, RoutingInfo, DEFAULT_CACHE_CAPACITY};
use crate::pool::{Lane, WorkerPool};
use crate::semantic::{semantic_signature, DEFAULT_SEMANTIC_MAX_VARS};
use crate::shard::{shard_miter, Shard, ShardPolicy};

/// Default capacity of the whole-job result memo
/// ([`SvcConfig::job_memo_capacity`]).
pub const DEFAULT_JOB_MEMO_CAPACITY: usize = 4096;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct SvcConfig {
    /// Worker threads proving shards.
    pub workers: usize,
    /// Simulation threads of each worker's executor.
    pub exec_threads: usize,
    /// Engine parameters for every shard.
    pub engine: EngineConfig,
    /// Run the SAT sweeping fallback on shards the engine leaves
    /// undecided (the combined flow). Off by default: a service usually
    /// prefers fast partial verdicts over long SAT tails.
    pub sat_fallback: bool,
    /// SAT fallback parameters (used only with `sat_fallback`).
    pub sat: SweepConfig,
    /// How undecided shards are finished. [`ProverMode::Sequential`] (the
    /// compatibility default) keeps the pre-adaptive behavior: plain
    /// sim-sweep, or the fixed-sequence combined flow under
    /// `sat_fallback`. [`ProverMode::Adaptive`] routes every shard
    /// through one service-wide adaptive [`Prover`] shared across
    /// workers, so the difficulty model learns from the whole fleet and
    /// routed cache hits pre-seed it.
    pub prover: ProverMode,
    /// How miters split into shards.
    pub shard_policy: ShardPolicy,
    /// Shards with fewer nodes than this are *fused*: consecutive tiny
    /// shards of one job are batched into a single pooled dispatch
    /// (closing a batch once its cumulative node count reaches the
    /// threshold), so small jobs pay one scheduling round-trip instead
    /// of one per cone. `0` (the default) disables fusing.
    pub fuse_threshold: usize,
    /// Deadline applied to jobs submitted without an explicit one.
    pub default_deadline: Option<Duration>,
    /// Cone structures the result cache retains before evicting
    /// least-recently-used entries (0 disables caching).
    pub cache_capacity: usize,
    /// Settled whole-job results the job memo retains, keyed on the
    /// submitted miter's structural hash. A duplicate submission of an
    /// already-settled miter settles instantly with the prior verdict —
    /// no re-shard, no re-hash, no dispatch — which is what keeps a
    /// fleet of clients sweeping the *same* suite from re-paying the
    /// per-job decomposition cost per client. Jobs that settle with a
    /// tripped cancel token are never memoized (their verdict is
    /// partial); concurrent in-flight duplicates each prove fresh (the
    /// memo only serves *settled* results). `0` disables the memo.
    pub job_memo_capacity: usize,
    /// Largest cone input count the semantic cache tier keys: qualifying
    /// single-PO cones are NPN-canonicalized so *functionally* equivalent
    /// cones — resynthesized, input-permuted, negated — share one cached
    /// verdict. Canonicalization enumerates `k! * 2^k * 2` transforms, so
    /// the bound trades one-off keying cost against reach; `0` disables
    /// the semantic tier.
    pub semantic_max_vars: usize,
    /// Path of the persistent semantic-verdict log. Settled canonical
    /// verdicts are appended as they prove and loaded back on service
    /// start, so a restarted service keeps its semantic corpus. A missing
    /// file is a fresh start; corrupt lines are skipped, never fatal.
    /// `None` (the default) keeps the cache purely in-memory.
    pub cache_persist: Option<std::path::PathBuf>,
    /// Time source for every duration the service reports (queue waits,
    /// job totals). Inject a [`parsweep_trace::ManualClock`] for
    /// deterministic timing in tests; defaults to the wall clock.
    pub clock: Arc<dyn Clock>,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            workers: 2,
            exec_threads: 1,
            engine: EngineConfig::default(),
            sat_fallback: false,
            sat: SweepConfig::default(),
            prover: ProverMode::default(),
            shard_policy: ShardPolicy::PerOutput,
            fuse_threshold: 0,
            default_deadline: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            job_memo_capacity: DEFAULT_JOB_MEMO_CAPACITY,
            semantic_max_vars: DEFAULT_SEMANTIC_MAX_VARS,
            cache_persist: None,
            clock: Arc::new(trace::WallClock::new()),
        }
    }
}

/// Per-submission options: deadline, priority lane, submitting client.
///
/// The default is the historical behavior: no deadline beyond the
/// service default, interactive lane, anonymous client `0`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOpts {
    /// Wall-time bound for this job; `None` falls back to
    /// [`SvcConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// Priority lane the job's shards are queued on.
    pub lane: Lane,
    /// Submitting client (a connection id in the TCP front-end); used
    /// for per-client accounting. `0` means "anonymous / single-client".
    pub client: u64,
}

/// Opaque job identifier returned by [`CecService::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Per-job effort statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct JobStats {
    /// Output-cone shards the job split into.
    pub shards: usize,
    /// Shards that rode a fused (batched) dispatch instead of their own.
    pub fused_shards: usize,
    /// Shards settled from the result cache.
    pub cache_hits: u64,
    /// Shards that had to be proved fresh.
    pub cache_misses: u64,
    /// Time from submission until a worker first picked up a shard.
    pub queue_wait: Duration,
    /// Time from submission until the last shard settled.
    pub total: Duration,
    /// True if the job's token tripped (deadline or explicit cancel).
    pub cancelled: bool,
    /// True if the job settled instantly from the whole-job result memo
    /// (a duplicate of an already-settled miter): `shards` then reports
    /// the prior run's decomposition, while the cache counters are zero
    /// because nothing was dispatched.
    pub memo_hit: bool,
}

/// The settled outcome of one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job this verdict belongs to.
    pub id: JobId,
    /// Composed verdict: `NotEquivalent` (with a counter-example lifted
    /// to the submitted miter's PIs) if any shard disproved, `Equivalent`
    /// if every shard proved, `Undecided` otherwise.
    pub verdict: Verdict,
    /// Effort breakdown.
    pub stats: JobStats,
}

/// Per-client counters, snapshot by [`CecService::client_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Jobs this client submitted.
    pub submitted: u64,
    /// Jobs of this client fully settled.
    pub completed: u64,
    /// Jobs of this client that settled with a tripped cancel token.
    pub cancelled: u64,
    /// Result-cache hits across this client's shards.
    pub cache_hits: u64,
    /// Result-cache misses across this client's shards.
    pub cache_misses: u64,
    /// Jobs submitted per lane (`[interactive, batch]`).
    pub jobs_by_lane: [u64; 2],
}

/// Service-wide counters, snapshot by [`CecService::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SvcStats {
    /// Jobs submitted so far.
    pub jobs_submitted: u64,
    /// Jobs fully settled so far.
    pub jobs_completed: u64,
    /// Shards produced across all jobs.
    pub shards_total: u64,
    /// Shards that rode a fused (batched) dispatch.
    pub fused_shards: u64,
    /// Fused dispatches issued (each carrying ≥ 2 shards).
    pub fused_dispatches: u64,
    /// Result-cache hits across all jobs.
    pub cache_hits: u64,
    /// Result-cache misses across all jobs.
    pub cache_misses: u64,
    /// Distinct cone structures currently cached.
    pub cache_len: usize,
    /// Cache entries dropped by the LRU capacity bound.
    pub cache_evictions: u64,
    /// Cache hits whose entry carried engine-routing info, replayed into
    /// the adaptive prover's difficulty model.
    pub cache_routing_hits: u64,
    /// Cache hits served by the semantic (NPN-canonical) tier: the cone
    /// was structurally new but functionally equivalent to a settled one.
    pub cache_semantic_hits: u64,
    /// Semantic verdicts loaded from the persistent log at start.
    pub cache_persist_loaded: u64,
    /// Semantic verdicts appended to the persistent log this run.
    pub cache_persist_appended: u64,
    /// Jobs that settled with their cancel token tripped (deadline or
    /// explicit cancellation).
    pub cancellations: u64,
    /// Jobs settled instantly by the whole-job result memo (duplicate
    /// submissions of an already-settled miter).
    pub job_memo_hits: u64,
    /// Worker-pool busy fraction over the pool's active window — first
    /// job dequeue to last settle — not whole-process wall clock
    /// (0.0–1.0).
    pub worker_utilization: f64,
}

impl SvcStats {
    /// Cache hits over total lookups; `0.0` before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for SvcStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jobs {}/{} | shards {} ({} fused in {} dispatches) | \
             cache {:.0}% of {} lookups ({} semantic; {} cones, {} evicted) | \
             {} memoized | {} cancelled | workers {:.0}% busy",
            self.jobs_completed,
            self.jobs_submitted,
            self.shards_total,
            self.fused_shards,
            self.fused_dispatches,
            100.0 * self.cache_hit_rate(),
            self.cache_hits + self.cache_misses,
            self.cache_semantic_hits,
            self.cache_len,
            self.cache_evictions,
            self.job_memo_hits,
            self.cancellations,
            100.0 * self.worker_utilization
        )
    }
}

/// Aggregation state of one in-flight job; `done` (paired with the same
/// mutex) wakes waiters when `result` settles.
struct JobAgg {
    remaining: usize,
    undecided: usize,
    cex: Option<Cex>,
    cache_hits: u64,
    cache_misses: u64,
    /// Clock reading when a worker first picked up a shard.
    first_start: Option<Duration>,
    result: Option<JobResult>,
}

/// Service-lifetime counters, per-client accounting and latency
/// histograms shared by every job's settle path — the backing store of
/// [`CecService::metrics_text`].
struct SvcShared {
    completed_jobs: AtomicU64,
    cancellations: AtomicU64,
    fused_shards: AtomicU64,
    fused_dispatches: AtomicU64,
    jobs_by_lane: [AtomicU64; 2],
    clients: Mutex<HashMap<u64, ClientStats>>,
    queue_wait: Histogram,
    job_latency: Histogram,
    job_memo: Mutex<JobMemo>,
    job_memo_hits: AtomicU64,
}

impl SvcShared {
    fn new(memo_capacity: usize) -> Self {
        SvcShared {
            completed_jobs: AtomicU64::new(0),
            cancellations: AtomicU64::new(0),
            fused_shards: AtomicU64::new(0),
            fused_dispatches: AtomicU64::new(0),
            jobs_by_lane: [AtomicU64::new(0), AtomicU64::new(0)],
            clients: Mutex::new(HashMap::new()),
            queue_wait: Histogram::latency_default(),
            job_latency: Histogram::latency_default(),
            job_memo: Mutex::new(JobMemo::new(memo_capacity)),
            job_memo_hits: AtomicU64::new(0),
        }
    }
}

/// A second, independent identity of a memoized miter, checked on every
/// memo hit. The memo does not retain the submitted miter (a whole-job
/// memo holding thousands of full networks would dwarf the results it
/// guards), so it cannot re-check structure exactly the way the shard
/// cache does; instead it stores this fingerprint — an independent
/// 64-bit digest ([`Aig::structural_fingerprint`]) plus the exact
/// PI/PO/node counts — and refuses to serve unless the probing miter
/// matches. A wrong verdict then needs *both* digests to collide at once
/// on same-shaped networks, instead of riding one `structural_hash`
/// collision straight to the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct MiterFingerprint {
    fingerprint: u64,
    pis: usize,
    pos: usize,
    nodes: usize,
}

impl MiterFingerprint {
    fn of(miter: &Aig) -> Self {
        MiterFingerprint {
            fingerprint: miter.structural_fingerprint(),
            pis: miter.num_pis(),
            pos: miter.num_pos(),
            nodes: miter.num_nodes(),
        }
    }
}

/// FIFO-bounded memo of settled whole-job results, keyed on the
/// submitted miter's [`Aig::structural_hash`] and verified against a
/// [`MiterFingerprint`] before serving. FIFO (not LRU) keeps the insert
/// path a push + occasional pop; duplicate-heavy traffic re-hits entries
/// soon after insertion, where the two policies behave the same.
struct JobMemo {
    map: HashMap<u64, (MiterFingerprint, JobResult)>,
    order: std::collections::VecDeque<u64>,
    capacity: usize,
}

impl JobMemo {
    fn new(capacity: usize) -> Self {
        JobMemo {
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
            capacity,
        }
    }

    /// Serves the memoized result only if the probing miter's fingerprint
    /// matches the one stored at settle; a `structural_hash` collision
    /// between different miters degrades to a miss, not a wrong verdict.
    fn lookup(&self, key: u64, probe: &MiterFingerprint) -> Option<JobResult> {
        let (stored, result) = self.map.get(&key)?;
        (stored == probe).then(|| result.clone())
    }

    /// First settle of a structure wins; racing duplicates that proved
    /// concurrently are equal anyway, so re-inserts are dropped.
    fn insert(&mut self, key: u64, fingerprint: MiterFingerprint, result: JobResult) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        if self.order.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (fingerprint, result));
        self.order.push_back(key);
    }
}

struct JobShared {
    id: JobId,
    token: CancelToken,
    clock: Arc<dyn Clock>,
    /// Clock reading at submission.
    submitted: Duration,
    shards: usize,
    fused_shards: usize,
    lane: Lane,
    client: u64,
    /// Whole-miter structural hash plus the verification fingerprint
    /// computed at submission; settle inserts the composed result into
    /// the service's job memo under this pair. `None` when the memo is
    /// disabled or the job itself settled from the memo.
    memo_key: Option<(u64, MiterFingerprint)>,
    agg: Mutex<JobAgg>,
    done: Condvar,
}

impl JobShared {
    /// Records one settled shard under the aggregation lock; the last
    /// shard composes the job verdict, feeds the service counters and
    /// histograms, and wakes waiters.
    fn settle_shard(&self, local: ShardOutcome, svc: &SvcShared) {
        let mut agg = self.agg.lock().unwrap();
        match local.verdict {
            Verdict::Equivalent => {}
            Verdict::NotEquivalent(cex) => {
                if agg.cex.is_none() {
                    agg.cex = Some(cex);
                }
                // One disproof settles the whole job: stop sibling shards.
                self.token.cancel();
            }
            Verdict::Undecided => agg.undecided += 1,
        }
        agg.cache_hits += u64::from(local.cache_hit);
        agg.cache_misses += u64::from(!local.cache_hit);
        agg.remaining -= 1;
        if agg.remaining == 0 {
            let verdict = match agg.cex.take() {
                Some(cex) => Verdict::NotEquivalent(cex),
                None if agg.undecided > 0 => Verdict::Undecided,
                None => Verdict::Equivalent,
            };
            let queue_wait = agg
                .first_start
                .map(|t| t.saturating_sub(self.submitted))
                .unwrap_or_default();
            let total = self.clock.since(self.submitted);
            let cancelled = self.token.is_cancelled();
            let result = JobResult {
                id: self.id,
                verdict,
                stats: JobStats {
                    shards: self.shards,
                    fused_shards: self.fused_shards,
                    cache_hits: agg.cache_hits,
                    cache_misses: agg.cache_misses,
                    queue_wait,
                    total,
                    cancelled,
                    memo_hit: false,
                },
            };
            if let Some((key, fingerprint)) = self.memo_key {
                // Decided verdicts are final either way: Equivalent means
                // every shard proved, NotEquivalent carries a concrete
                // cex (the token trips on disproof only to stop sibling
                // shards). Undecided may be a deadline artifact or an
                // engine give-up a rerun could improve on — never
                // memoize it.
                if !matches!(result.verdict, Verdict::Undecided) {
                    svc.job_memo
                        .lock()
                        .unwrap()
                        .insert(key, fingerprint, result.clone());
                }
            }
            agg.result = Some(result);
            svc.completed_jobs.fetch_add(1, Ordering::Relaxed);
            if cancelled {
                svc.cancellations.fetch_add(1, Ordering::Relaxed);
            }
            {
                let mut clients = svc.clients.lock().unwrap();
                let entry = clients.entry(self.client).or_default();
                entry.completed += 1;
                entry.cancelled += u64::from(cancelled);
                entry.cache_hits += agg.cache_hits;
                entry.cache_misses += agg.cache_misses;
            }
            svc.queue_wait.observe(queue_wait.as_secs_f64());
            svc.job_latency.observe(total.as_secs_f64());
            trace::instant(
                "svc",
                "job.settled",
                vec![
                    ("job", trace::ArgValue::U64(self.id.0)),
                    ("client", trace::ArgValue::U64(self.client)),
                    ("cancelled", trace::ArgValue::U64(u64::from(cancelled))),
                ],
            );
            self.done.notify_all();
        }
    }
}

struct ShardOutcome {
    verdict: Verdict,
    cache_hit: bool,
}

/// One shard's dispatchable payload: the extracted cone, its cache key,
/// and the PI positions that lift a cone counter-example back to the
/// submitted miter.
struct ShardTask {
    cone: Aig,
    hash: u64,
    lift: Vec<usize>,
}

/// A multi-client combinational-equivalence-checking job service.
///
/// ```
/// use parsweep_aig::{miter, Aig};
/// use parsweep_sat::Verdict;
/// use parsweep_svc::{CecService, SvcConfig};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Aig::new();
/// let xs = a.add_inputs(2);
/// let f = a.xor(xs[0], xs[1]);
/// a.add_po(f);
/// let m = miter(&a, &a.clone())?;
/// let svc = CecService::new(SvcConfig::default());
/// let id = svc.submit(m);
/// let result = svc.wait(id).expect("job exists");
/// assert_eq!(result.verdict, Verdict::Equivalent);
/// # Ok(())
/// # }
/// ```
pub struct CecService {
    cfg: SvcConfig,
    pool: WorkerPool,
    execs: Arc<Vec<Executor>>,
    cache: Arc<ResultCache>,
    /// One adaptive dispatcher for the whole fleet (used in
    /// [`ProverMode::Adaptive`]): sharing it across workers is what makes
    /// the difficulty model learn from every shard, not just a worker's
    /// own slice of the traffic.
    prover: Arc<Prover>,
    next_id: AtomicU64,
    shared: Arc<SvcShared>,
    shards_total: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<JobShared>>>,
}

impl CecService {
    /// Starts the worker pool, with one executor per worker: kernel
    /// launches stay serialized per executor (the device model the kernel
    /// sanitizer checks) while shards still prove in parallel across
    /// workers.
    pub fn new(cfg: SvcConfig) -> Self {
        let pool = WorkerPool::new(cfg.workers);
        let execs = Arc::new(
            (0..pool.workers())
                .map(|_| Executor::with_threads(cfg.exec_threads.max(1)))
                .collect::<Vec<_>>(),
        );
        let mut cache = ResultCache::with_capacity(cfg.cache_capacity);
        if let Some(path) = &cfg.cache_persist {
            // A damaged or unwritable corpus degrades to a cold cache,
            // never a dead service: log and carry on.
            match cache.attach_persist(path) {
                Ok(summary) => trace::instant(
                    "svc",
                    "cache.persist_loaded",
                    vec![
                        ("loaded", trace::ArgValue::U64(summary.loaded as u64)),
                        ("skipped", trace::ArgValue::U64(summary.skipped as u64)),
                    ],
                ),
                Err(e) => eprintln!(
                    "parsweep-svc: cache persistence at {} unavailable: {e}",
                    path.display()
                ),
            }
        }
        let cache = Arc::new(cache);
        let prover = Arc::new(build_prover(
            ProverConfig {
                mode: cfg.prover,
                ..ProverConfig::default()
            },
            &PortfolioConfig {
                sweep: cfg.sat.clone(),
                ..PortfolioConfig::default()
            },
            &cfg.engine,
        ));
        let shared = Arc::new(SvcShared::new(cfg.job_memo_capacity));
        CecService {
            cfg,
            pool,
            execs,
            cache,
            prover,
            next_id: AtomicU64::new(1),
            shared,
            shards_total: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
        }
    }

    /// Submits a miter under the configured default deadline.
    pub fn submit(&self, miter: Aig) -> JobId {
        self.submit_with_opts(miter, SubmitOpts::default())
    }

    /// Submits a miter; `deadline` (if any) bounds the job's wall time,
    /// after which it settles with a partial verdict.
    pub fn submit_with_deadline(&self, miter: Aig, deadline: Option<Duration>) -> JobId {
        self.submit_with_opts(
            miter,
            SubmitOpts {
                deadline,
                ..SubmitOpts::default()
            },
        )
    }

    /// Submits a miter with explicit lane, client and deadline options.
    pub fn submit_with_opts(&self, miter: Aig, opts: SubmitOpts) -> JobId {
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.shared.jobs_by_lane[opts.lane.index()].fetch_add(1, Ordering::Relaxed);
        {
            let mut clients = self.shared.clients.lock().unwrap();
            let entry = clients.entry(opts.client).or_default();
            entry.submitted += 1;
            entry.jobs_by_lane[opts.lane.index()] += 1;
        }
        // Duplicate of an already-settled miter: settle instantly from
        // the job memo, skipping shard extraction and dispatch entirely.
        let memo_key = (self.cfg.job_memo_capacity > 0)
            .then(|| (miter.structural_hash(), MiterFingerprint::of(&miter)));
        if let Some((key, fingerprint)) = &memo_key {
            let prior = self
                .shared
                .job_memo
                .lock()
                .unwrap()
                .lookup(*key, fingerprint);
            if let Some(prior) = prior {
                return self.settle_from_memo(id, prior, &opts);
            }
        }
        let token = match opts.deadline.or(self.cfg.default_deadline) {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let shards = shard_miter(&miter, self.cfg.shard_policy);
        self.shards_total
            .fetch_add(shards.len() as u64, Ordering::Relaxed);
        trace::instant(
            "svc",
            "job.submitted",
            vec![
                ("job", trace::ArgValue::U64(id.0)),
                ("client", trace::ArgValue::U64(opts.client)),
                ("lane", trace::ArgValue::Str(opts.lane.name().into())),
                ("shards", trace::ArgValue::U64(shards.len() as u64)),
            ],
        );

        // Positions of the parent's PIs, for lifting cone counter-examples.
        let mut pi_position = vec![usize::MAX; miter.num_nodes()];
        for (p, pi) in miter.pis().iter().enumerate() {
            pi_position[pi.index()] = p;
        }
        let parent_pis = miter.num_pis();
        let (singles, groups) = plan_dispatches(shards, &pi_position, self.cfg.fuse_threshold);
        let fused_shards: usize = groups.iter().map(Vec::len).sum();
        let total_shards = singles.len() + fused_shards;

        let shared = Arc::new(JobShared {
            id,
            token: token.clone(),
            clock: Arc::clone(&self.cfg.clock),
            submitted: self.cfg.clock.now(),
            shards: total_shards,
            fused_shards,
            lane: opts.lane,
            client: opts.client,
            memo_key,
            agg: Mutex::new(JobAgg {
                remaining: total_shards,
                undecided: 0,
                cex: None,
                cache_hits: 0,
                cache_misses: 0,
                first_start: None,
                result: None,
            }),
            done: Condvar::new(),
        });
        self.jobs.lock().unwrap().insert(id.0, Arc::clone(&shared));

        if total_shards == 0 {
            // Every PO was already constant false: proved as submitted.
            let mut agg = shared.agg.lock().unwrap();
            agg.result = Some(JobResult {
                id,
                verdict: Verdict::Equivalent,
                stats: JobStats {
                    total: self.cfg.clock.since(shared.submitted),
                    ..JobStats::default()
                },
            });
            self.shared.completed_jobs.fetch_add(1, Ordering::Relaxed);
            {
                let mut clients = self.shared.clients.lock().unwrap();
                clients.entry(opts.client).or_default().completed += 1;
            }
            shared.done.notify_all();
            return id;
        }

        for task in singles {
            self.dispatch(vec![task], &shared, parent_pis, false);
        }
        self.shared
            .fused_shards
            .fetch_add(fused_shards as u64, Ordering::Relaxed);
        self.shared
            .fused_dispatches
            .fetch_add(groups.len() as u64, Ordering::Relaxed);
        for group in groups {
            self.dispatch(group, &shared, parent_pis, true);
        }
        id
    }

    /// Settles a duplicate submission instantly from the job memo: the
    /// prior run's verdict under a fresh job id, with zero dispatched
    /// shards and `memo_hit` marked in the stats.
    fn settle_from_memo(&self, id: JobId, prior: JobResult, opts: &SubmitOpts) -> JobId {
        let submitted = self.cfg.clock.now();
        let result = JobResult {
            id,
            verdict: prior.verdict,
            stats: JobStats {
                shards: prior.stats.shards,
                queue_wait: Duration::ZERO,
                total: self.cfg.clock.since(submitted),
                memo_hit: true,
                ..JobStats::default()
            },
        };
        let total = result.stats.total;
        let shared = Arc::new(JobShared {
            id,
            token: CancelToken::new(),
            clock: Arc::clone(&self.cfg.clock),
            submitted,
            shards: result.stats.shards,
            fused_shards: 0,
            lane: opts.lane,
            client: opts.client,
            memo_key: None,
            agg: Mutex::new(JobAgg {
                remaining: 0,
                undecided: 0,
                cex: None,
                cache_hits: 0,
                cache_misses: 0,
                first_start: None,
                result: Some(result),
            }),
            done: Condvar::new(),
        });
        self.shared.job_memo_hits.fetch_add(1, Ordering::Relaxed);
        self.shared.completed_jobs.fetch_add(1, Ordering::Relaxed);
        {
            let mut clients = self.shared.clients.lock().unwrap();
            clients.entry(opts.client).or_default().completed += 1;
        }
        self.shared.queue_wait.observe(0.0);
        self.shared.job_latency.observe(total.as_secs_f64());
        trace::instant(
            "svc",
            "job.memo_hit",
            vec![
                ("job", trace::ArgValue::U64(id.0)),
                ("client", trace::ArgValue::U64(opts.client)),
            ],
        );
        self.jobs.lock().unwrap().insert(id.0, shared);
        id
    }

    /// Queues one pool dispatch carrying one (`singles`) or several
    /// (`fused`) shard tasks; every task settles individually.
    fn dispatch(
        &self,
        tasks: Vec<ShardTask>,
        shared: &Arc<JobShared>,
        parent_pis: usize,
        fused: bool,
    ) {
        let shared = Arc::clone(shared);
        let execs = Arc::clone(&self.execs);
        let cache = Arc::clone(&self.cache);
        let svc_shared = Arc::clone(&self.shared);
        let engine_cfg = self.cfg.engine.clone();
        let sat_cfg = self.cfg.sat.clone();
        let sat_fallback = self.cfg.sat_fallback;
        let prover = Arc::clone(&self.prover);
        let mode = self.cfg.prover;
        let semantic_max_vars = self.cfg.semantic_max_vars;
        self.pool.spawn_in(shared.lane, move |worker| {
            let queue_wait = {
                let now = shared.clock.now();
                let mut agg = shared.agg.lock().unwrap();
                if agg.first_start.is_none() {
                    agg.first_start = Some(now);
                }
                now.saturating_sub(shared.submitted)
            };
            trace::set_thread_label(&format!("svc-worker-{worker}"));
            let mut span = Some(trace::span(
                "svc",
                if fused {
                    "job.fused_dispatch"
                } else {
                    "job.shard"
                },
            ));
            if let Some(span) = span.as_mut() {
                span.arg_u64("job", shared.id.0);
                span.arg_u64("tasks", tasks.len() as u64);
                span.arg_f64("queue_wait", queue_wait.as_secs_f64());
            }
            let last = tasks.len().saturating_sub(1);
            for (i, task) in tasks.into_iter().enumerate() {
                let outcome = prove_shard(
                    &task.cone,
                    task.hash,
                    &execs[worker],
                    &cache,
                    &engine_cfg,
                    &sat_cfg,
                    sat_fallback,
                    &prover,
                    mode,
                    semantic_max_vars,
                    &shared.token,
                );
                let lifted = ShardOutcome {
                    verdict: lift_verdict(outcome.verdict, &task.cone, &task.lift, parent_pis),
                    cache_hit: outcome.cache_hit,
                };
                // The final settle can wake a drainer that immediately
                // exports the trace, so the span must close first: an
                // end event recorded after the export would leave the
                // stream unbalanced.
                if i == last {
                    span.take();
                }
                shared.settle_shard(lifted, &svc_shared);
            }
        });
    }

    /// Cancels a job; in-flight shards stop at their next phase boundary.
    /// Returns false for an unknown (or already drained) job.
    pub fn cancel(&self, id: JobId) -> bool {
        match self.jobs.lock().unwrap().get(&id.0) {
            Some(shared) => {
                shared.token.cancel();
                true
            }
            None => false,
        }
    }

    /// Blocks until the job settles; `None` for an unknown (or already
    /// drained) job.
    pub fn wait(&self, id: JobId) -> Option<JobResult> {
        let shared = Arc::clone(self.jobs.lock().unwrap().get(&id.0)?);
        let mut agg = shared.agg.lock().unwrap();
        while agg.result.is_none() {
            agg = shared.done.wait(agg).unwrap();
        }
        agg.result.clone()
    }

    /// Blocks until the job settles, then removes it from the service —
    /// the long-running front-end variant of [`CecService::wait`]: a
    /// server that waits per job must also drop settled bookkeeping, or
    /// the job table grows without bound.
    pub fn wait_take(&self, id: JobId) -> Option<JobResult> {
        let result = self.wait(id);
        if result.is_some() {
            self.jobs.lock().unwrap().remove(&id.0);
        }
        result
    }

    /// Waits for every outstanding job and returns their results in
    /// submission order, removing them from the service.
    pub fn drain(&self) -> Vec<JobResult> {
        let mut ids: Vec<u64> = self.jobs.lock().unwrap().keys().copied().collect();
        ids.sort_unstable();
        let mut results = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(result) = self.wait(JobId(id)) {
                results.push(result);
            }
            self.jobs.lock().unwrap().remove(&id);
        }
        results
    }

    /// Snapshot of the service-wide counters.
    pub fn stats(&self) -> SvcStats {
        SvcStats {
            jobs_submitted: self.next_id.load(Ordering::Relaxed) - 1,
            jobs_completed: self.shared.completed_jobs.load(Ordering::Relaxed),
            shards_total: self.shards_total.load(Ordering::Relaxed),
            fused_shards: self.shared.fused_shards.load(Ordering::Relaxed),
            fused_dispatches: self.shared.fused_dispatches.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_len: self.cache.len(),
            cache_evictions: self.cache.evictions(),
            cache_routing_hits: self.cache.routing_hits(),
            cache_semantic_hits: self.cache.semantic_hits(),
            cache_persist_loaded: self.cache.persist_loaded(),
            cache_persist_appended: self.cache.persist_appended(),
            cancellations: self.shared.cancellations.load(Ordering::Relaxed),
            job_memo_hits: self.shared.job_memo_hits.load(Ordering::Relaxed),
            worker_utilization: self.pool.utilization(),
        }
    }

    /// Per-client counters, sorted by client id.
    pub fn client_stats(&self) -> Vec<(u64, ClientStats)> {
        let mut entries: Vec<(u64, ClientStats)> = self
            .shared
            .clients
            .lock()
            .unwrap()
            .iter()
            .map(|(&id, &stats)| (id, stats))
            .collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        entries
    }

    /// Drops a client's accounting entry (returning it), so a server
    /// whose clients come and go keeps the per-client table bounded by
    /// *active* connections. In-flight jobs of the client still settle
    /// normally; their completion re-creates a fresh entry.
    pub fn forget_client(&self, client: u64) -> Option<ClientStats> {
        self.shared.clients.lock().unwrap().remove(&client)
    }

    /// Busy time and active-window span of the worker pool (see
    /// [`crate::WorkerPool::busy_window`]); a saturation bench diffs this
    /// across phases to compute per-phase utilization.
    pub fn busy_window(&self) -> (Duration, Duration) {
        self.pool.busy_window()
    }

    /// Snapshot of the shared adaptive dispatcher's per-engine statistics
    /// (all zeros until a job runs in [`ProverMode::Adaptive`]).
    pub fn prover_stats(&self) -> parsweep_sat::ProverStats {
        self.prover.stats()
    }

    /// The launch profile of the whole worker fleet: every per-worker
    /// executor's [`LaunchStats`] merged into one.
    pub fn launch_stats(&self) -> LaunchStats {
        let mut merged = LaunchStats::default();
        for exec in self.execs.iter() {
            merged.merge(&exec.stats());
        }
        merged
    }

    /// Renders the service's counters and latency histograms in the
    /// Prometheus text exposition format — the payload of the JSON-lines
    /// protocol's `metrics` op.
    pub fn metrics_text(&self) -> String {
        let stats = self.stats();
        let launch = self.launch_stats();
        let mut out = String::new();
        render_counter(
            &mut out,
            "parsweep_jobs_submitted_total",
            "Jobs submitted to the service.",
            stats.jobs_submitted,
        );
        render_counter(
            &mut out,
            "parsweep_jobs_completed_total",
            "Jobs fully settled.",
            stats.jobs_completed,
        );
        render_labeled_counter(
            &mut out,
            "parsweep_jobs_by_lane_total",
            "Jobs submitted per priority lane.",
            "lane",
            &Lane::ALL
                .iter()
                .map(|l| {
                    (
                        l.name(),
                        self.shared.jobs_by_lane[l.index()].load(Ordering::Relaxed),
                    )
                })
                .collect::<Vec<_>>(),
        );
        render_counter(
            &mut out,
            "parsweep_shards_total",
            "Output-cone shards produced across all jobs.",
            stats.shards_total,
        );
        render_counter(
            &mut out,
            "parsweep_fused_shards_total",
            "Shards batched into fused dispatches instead of their own.",
            stats.fused_shards,
        );
        render_counter(
            &mut out,
            "parsweep_fused_dispatches_total",
            "Fused pool dispatches issued (each carrying several tiny shards).",
            stats.fused_dispatches,
        );
        render_counter(
            &mut out,
            "parsweep_cancellations_total",
            "Jobs settled with a tripped cancel token.",
            stats.cancellations,
        );
        render_counter(
            &mut out,
            "parsweep_job_memo_hits_total",
            "Jobs settled instantly by the whole-job result memo.",
            stats.job_memo_hits,
        );
        render_counter(
            &mut out,
            "parsweep_cache_hits_total",
            "Result-cache lookups settled from a verified entry.",
            stats.cache_hits,
        );
        render_counter(
            &mut out,
            "parsweep_cache_misses_total",
            "Result-cache lookups that found nothing.",
            stats.cache_misses,
        );
        render_counter(
            &mut out,
            "parsweep_cache_evictions_total",
            "Result-cache entries dropped by the LRU capacity bound.",
            stats.cache_evictions,
        );
        render_counter(
            &mut out,
            "parsweep_cache_routing_hits",
            "Result-cache hits whose entry pre-seeded the adaptive prover's routing.",
            stats.cache_routing_hits,
        );
        render_counter(
            &mut out,
            "parsweep_cache_semantic_hits_total",
            "Cache hits served by the semantic (NPN-canonical) tier for structurally new cones.",
            stats.cache_semantic_hits,
        );
        render_counter(
            &mut out,
            "parsweep_cache_persist_loaded_total",
            "Semantic verdicts loaded from the persistent log at service start.",
            stats.cache_persist_loaded,
        );
        render_counter(
            &mut out,
            "parsweep_cache_persist_appended_total",
            "Semantic verdicts appended to the persistent log this run.",
            stats.cache_persist_appended,
        );
        render_gauge(
            &mut out,
            "parsweep_cache_entries",
            "Distinct cone structures currently cached.",
            stats.cache_len as f64,
        );
        render_gauge(
            &mut out,
            "parsweep_worker_utilization",
            "Worker-pool busy fraction over the pool's active window.",
            stats.worker_utilization,
        );
        render_gauge(
            &mut out,
            "parsweep_clients",
            "Clients with an accounting entry (active connections plus the anonymous lane).",
            self.shared.clients.lock().unwrap().len() as f64,
        );
        render_counter(
            &mut out,
            "parsweep_kernel_launches_total",
            "Kernel launches across the worker fleet's executors (pool-dispatched plus inline).",
            launch.total_launches(),
        );
        render_counter(
            &mut out,
            "parsweep_kernel_inline_launches_total",
            "Kernel launches below the inline threshold, run on the calling thread.",
            launch.inline_launches,
        );
        render_counter(
            &mut out,
            "parsweep_kernel_threads_total",
            "Kernel work items (launch widths summed) across the fleet.",
            launch.total_threads,
        );
        render_counter(
            &mut out,
            "parsweep_arena_hits_total",
            "Buffer-arena takes served from the pool.",
            launch.arena_hits,
        );
        render_counter(
            &mut out,
            "parsweep_arena_misses_total",
            "Buffer-arena takes that allocated fresh.",
            launch.arena_misses,
        );
        render_gauge(
            &mut out,
            "parsweep_arena_peak_bytes",
            "High-water mark of any one worker's arena footprint.",
            launch.arena_peak_bytes as f64,
        );
        render_counter(
            &mut out,
            "parsweep_par_static_verified_launches_total",
            "Kernel launches whose declared effects were statically verified, skipping dynamic sanitization.",
            launch.static_verified_launches,
        );
        render_counter(
            &mut out,
            "parsweep_par_static_verified_replays",
            "Replays of kernel graphs that were fully verified at build time.",
            launch.static_verified_replays,
        );
        let prove = trace::metrics::prove_counters();
        let engine_series = |slots: &[AtomicU64; trace::metrics::PROVE_ENGINE_SLOTS]| {
            EngineKind::ALL
                .iter()
                .map(|k| (k.name(), slots[k.slot()].load(Ordering::Relaxed)))
                .collect::<Vec<_>>()
        };
        render_labeled_counter(
            &mut out,
            "parsweep_prove_engine_wins_total",
            "Dispatch attempts that decided their class, per engine.",
            "engine",
            &engine_series(&prove.wins),
        );
        render_labeled_counter(
            &mut out,
            "parsweep_prove_engine_losses_total",
            "Dispatch attempts that finished undecided, per engine.",
            "engine",
            &engine_series(&prove.losses),
        );
        render_labeled_counter(
            &mut out,
            "parsweep_prove_engine_cancelled_total",
            "Dispatch attempts cancelled when a rival engine won the race, per engine.",
            "engine",
            &engine_series(&prove.cancelled),
        );
        let sim = trace::metrics::sim_counters();
        render_counter(
            &mut out,
            "parsweep_sim_pruned_rounds_total",
            "Support-pruned partial-simulation rounds (live cones only).",
            trace::metrics::SimCounters::get(&sim.pruned_rounds),
        );
        render_counter(
            &mut out,
            "parsweep_sim_pruned_nodes_skipped_total",
            "Nodes outside live cones that pruned rounds never launched.",
            trace::metrics::SimCounters::get(&sim.pruned_nodes_skipped),
        );
        render_counter(
            &mut out,
            "parsweep_sim_resim_clean_nodes_total",
            "Nodes memoized across miter rewrites by the dirty-cone resimulator.",
            trace::metrics::SimCounters::get(&sim.resim_clean_nodes),
        );
        render_counter(
            &mut out,
            "parsweep_sim_resim_dirty_nodes_total",
            "Nodes re-launched as the dirty frontier of a miter rewrite.",
            trace::metrics::SimCounters::get(&sim.resim_dirty_nodes),
        );
        render_counter(
            &mut out,
            "parsweep_sim_classes_refined_total",
            "Equivalence classes split in place by fresh-pattern refinement.",
            trace::metrics::SimCounters::get(&sim.classes_refined),
        );
        render_counter(
            &mut out,
            "parsweep_sim_window_spills_total",
            "Signature levels retired from the device window to a spill tier.",
            trace::metrics::SimCounters::get(&sim.window_spills),
        );
        render_counter(
            &mut out,
            "parsweep_sim_window_spilled_words_total",
            "Signature words moved out of the device window by spill launches.",
            trace::metrics::SimCounters::get(&sim.window_spilled_words),
        );
        render_counter(
            &mut out,
            "parsweep_sim_window_fills_total",
            "Spilled signature levels re-materialized from the disk tier.",
            trace::metrics::SimCounters::get(&sim.window_fills),
        );
        render_counter(
            &mut out,
            "parsweep_sim_window_filled_words_total",
            "Signature words re-read from the disk tier on demand.",
            trace::metrics::SimCounters::get(&sim.window_filled_words),
        );
        render_counter(
            &mut out,
            "parsweep_sim_odc_masked_merges_total",
            "Pairs merged via the observability don't-care layer's exact check.",
            trace::metrics::SimCounters::get(&sim.odc_masked_merges),
        );
        render_histogram(
            &mut out,
            "parsweep_queue_wait_seconds",
            "Time from job submission until a worker first picked up a shard.",
            &self.shared.queue_wait.snapshot(),
        );
        render_histogram(
            &mut out,
            "parsweep_job_latency_seconds",
            "Time from job submission until the last shard settled.",
            &self.shared.job_latency.snapshot(),
        );
        out
    }
}

/// Splits a job's shards into per-shard dispatches (`singles`) and fused
/// batches (`groups`): shards smaller than `fuse_threshold` nodes are
/// packed, in shard order, into batches that close once their cumulative
/// node count reaches the threshold. A batch that would hold a single
/// shard degenerates into a per-shard dispatch. `lift` maps are computed
/// here so the dispatch path no longer needs the parent miter.
fn plan_dispatches(
    shards: Vec<Shard>,
    pi_position: &[usize],
    fuse_threshold: usize,
) -> (Vec<ShardTask>, Vec<Vec<ShardTask>>) {
    let mut singles = Vec::new();
    let mut groups: Vec<Vec<ShardTask>> = Vec::new();
    let mut open: Vec<ShardTask> = Vec::new();
    let mut open_nodes = 0usize;
    for shard in shards {
        let lift: Vec<usize> = shard
            .extraction
            .pi_map
            .iter()
            .map(|v: &Var| pi_position[v.index()])
            .collect();
        let cone = shard.extraction.cone;
        let nodes = cone.num_nodes();
        let task = ShardTask {
            cone,
            hash: shard.hash,
            lift,
        };
        if fuse_threshold > 0 && nodes < fuse_threshold {
            open_nodes += nodes;
            open.push(task);
            if open_nodes >= fuse_threshold {
                groups.push(std::mem::take(&mut open));
                open_nodes = 0;
            }
        } else {
            singles.push(task);
        }
    }
    match open.len() {
        0 => {}
        1 => singles.push(open.pop().expect("len checked")),
        _ => groups.push(open),
    }
    // A "fused" batch of one shard is just a single dispatch.
    let mut i = 0;
    while i < groups.len() {
        if groups[i].len() == 1 {
            let mut g = groups.swap_remove(i);
            singles.push(g.pop().expect("len checked"));
        } else {
            i += 1;
        }
    }
    (singles, groups)
}

/// Settles one cone: structural cache first, then the semantic
/// (NPN-canonical) tier for qualifying small cones, engine otherwise. In
/// [`ProverMode::Sequential`] the engine path is the pre-adaptive one
/// (sim-sweep, plus the fixed-sequence combined flow under
/// `sat_fallback`) and cache entries stay version-1. In
/// [`ProverMode::Adaptive`] the shard runs through the shared dispatcher,
/// the winning `(engine, cost)` is recorded into the cache, and a routed
/// hit replays its record into the difficulty model before returning.
/// Every settle of a semantically keyable cone also lands in the
/// semantic tier, so the *next* functionally identical cone hits even if
/// its structure differs. The returned verdict is over the *cone's* PIs.
#[allow(clippy::too_many_arguments)]
fn prove_shard(
    cone: &Aig,
    hash: u64,
    exec: &Executor,
    cache: &ResultCache,
    engine_cfg: &EngineConfig,
    sat_cfg: &SweepConfig,
    sat_fallback: bool,
    prover: &Prover,
    mode: ProverMode,
    semantic_max_vars: usize,
    token: &CancelToken,
) -> ShardOutcome {
    if token.is_cancelled() {
        // Skipped entirely: no cache lookup, no engine run.
        return ShardOutcome {
            verdict: Verdict::Undecided,
            cache_hit: false,
        };
    }
    let cached = {
        let _span = trace::span("svc", "job.cache_probe");
        cache.lookup_routed(hash, cone)
    };
    if let Some((verdict, routing)) = cached {
        if let Some(route) = routing {
            // Replay the cached win into the difficulty model: the next
            // cold cone of this shape routes like the proved one did.
            prover.observe_hint(route.engine, &prover.difficulty(cone), route.cost_micros);
        }
        trace::instant(
            "svc",
            "job.verdict",
            vec![("source", trace::ArgValue::Str("cache".into()))],
        );
        return ShardOutcome {
            verdict,
            cache_hit: true,
        };
    }
    // Structural miss: for small single-PO cones, canonicalize and probe
    // the semantic tier. The signature is computed once and reused for
    // the post-engine insert below.
    let sig = if semantic_max_vars > 0 {
        let _span = trace::span("svc", "job.semantic_key");
        semantic_signature(cone, semantic_max_vars)
    } else {
        None
    };
    if let Some(sig) = &sig {
        if let Some((verdict, routing)) = cache.lookup_semantic(cone, sig) {
            if let Some(route) = routing {
                prover.observe_hint(route.engine, &prover.difficulty(cone), route.cost_micros);
            }
            trace::instant(
                "svc",
                "job.verdict",
                vec![("source", trace::ArgValue::Str("semantic_cache".into()))],
            );
            return ShardOutcome {
                verdict,
                cache_hit: true,
            };
        }
    }
    match mode {
        ProverMode::Sequential => {
            let verdict = if sat_fallback {
                let cfg = CombinedConfig {
                    engine: engine_cfg.clone(),
                    sat: sat_cfg.clone(),
                    ec_transfer: true,
                    prover: ProverMode::Sequential,
                };
                combined_check_cancellable(cone, exec, &cfg, token).verdict
            } else {
                sim_sweep_cancellable(cone, exec, engine_cfg, token).verdict
            };
            cache.insert(hash, cone, &verdict);
            if let Some(sig) = &sig {
                cache.insert_semantic(sig, &verdict, None);
            }
            trace::instant(
                "svc",
                "job.verdict",
                vec![("source", trace::ArgValue::Str("engine".into()))],
            );
            ShardOutcome {
                verdict,
                cache_hit: false,
            }
        }
        ProverMode::Adaptive => {
            let cfg = CombinedConfig {
                engine: engine_cfg.clone(),
                sat: sat_cfg.clone(),
                ec_transfer: true,
                prover: ProverMode::Adaptive,
            };
            let result = combined_check_with_prover(cone, exec, &cfg, prover, token);
            let routing = shard_routing(result.engine_seconds, &result.verdict, &result.dispatch);
            cache.insert_routed(hash, cone, &result.verdict, routing);
            if let Some(sig) = &sig {
                cache.insert_semantic(sig, &result.verdict, routing);
            }
            trace::instant(
                "svc",
                "job.verdict",
                vec![("source", trace::ArgValue::Str("dispatch".into()))],
            );
            ShardOutcome {
                verdict: result.verdict,
                cache_hit: false,
            }
        }
    }
}

/// The routing record a decided adaptive shard leaves in the cache: the
/// engine that decided the most expensive dispatched cone (the one worth
/// pre-seeding), or the sim engine itself when no residual cone was
/// dispatched. `None` for undecided shards — the cache never stores them
/// anyway.
fn shard_routing(
    engine_seconds: f64,
    verdict: &Verdict,
    dispatch: &[ProveOutcome],
) -> Option<RoutingInfo> {
    if matches!(verdict, Verdict::Undecided) {
        return None;
    }
    let micros = |s: f64| (s * 1e6) as u64;
    dispatch
        .iter()
        .filter(|o| !matches!(o.verdict, Verdict::Undecided))
        .filter_map(|o| o.engine.map(|e| (e, o.seconds)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(engine, seconds)| RoutingInfo {
            engine,
            cost_micros: micros(seconds),
        })
        .or(Some(RoutingInfo {
            engine: EngineKind::SimSweep,
            cost_micros: micros(engine_seconds),
        }))
}

/// Lifts a cone-local verdict to the submitted miter: counter-example
/// bits move from cone-PI positions to the parent-PI positions recorded
/// at extraction (unlisted parent PIs are don't-cares, left false).
fn lift_verdict(verdict: Verdict, cone: &Aig, lift: &[usize], parent_pis: usize) -> Verdict {
    match verdict {
        Verdict::NotEquivalent(cex) => {
            let dense = cex.to_dense(cone);
            let mut bits = vec![false; parent_pis];
            for (i, &p) in lift.iter().enumerate() {
                if p != usize::MAX {
                    bits[p] = dense[i];
                }
            }
            Verdict::NotEquivalent(Cex::new(bits))
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::miter;
    use proptest::prelude::*;

    /// `width` independent XOR bits over disjoint PI pairs; the two
    /// variants build XOR differently so a miter of them does not strash
    /// to constants.
    fn xor_net(width: usize, variant: bool) -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(width * 2);
        for i in 0..width {
            let (a, b) = (xs[2 * i], xs[2 * i + 1]);
            let f = if variant {
                let o = aig.or(a, b);
                let n = aig.and(a, b);
                aig.and(o, !n)
            } else {
                aig.xor(a, b)
            };
            aig.add_po(f);
        }
        aig
    }

    #[test]
    fn equivalent_miter_is_proved() {
        let m = miter(&xor_net(3, false), &xor_net(3, true)).unwrap();
        let svc = CecService::new(SvcConfig::default());
        let id = svc.submit(m);
        let r = svc.wait(id).unwrap();
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert_eq!(r.stats.shards, 3);
        assert!(!r.stats.cancelled);
    }

    #[test]
    fn disproof_lifts_a_firing_cex() {
        let a = xor_net(3, false);
        let mut b = xor_net(3, true);
        let po1 = b.po(1);
        b.set_po(1, !po1);
        let m = miter(&a, &b).unwrap();
        let svc = CecService::new(SvcConfig::default());
        let id = svc.submit(m.clone());
        match svc.wait(id).unwrap().verdict {
            Verdict::NotEquivalent(cex) => assert!(cex.fires(&m), "lifted cex must fire"),
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn identical_shards_within_one_job_hit_the_cache() {
        // Three identical XOR cones on disjoint PIs: the first one proved
        // settles the other two from the cache.
        let m = miter(&xor_net(3, false), &xor_net(3, true)).unwrap();
        let svc = CecService::new(SvcConfig {
            workers: 1, // serialize so later shards see the first's proof
            ..SvcConfig::default()
        });
        let id = svc.submit(m);
        let r = svc.wait(id).unwrap();
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert_eq!(r.stats.cache_hits, 2, "stats: {:?}", r.stats);
        assert_eq!(r.stats.cache_misses, 1);
    }

    #[test]
    fn no_po_job_settles_equivalent_immediately() {
        let mut aig = Aig::new();
        aig.add_inputs(2);
        aig.add_po(parsweep_aig::Lit::FALSE);
        let svc = CecService::new(SvcConfig::default());
        let id = svc.submit(aig);
        let r = svc.wait(id).unwrap();
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert_eq!(r.stats.shards, 0);
    }

    #[test]
    fn unknown_job_wait_and_cancel() {
        let svc = CecService::new(SvcConfig::default());
        assert!(svc.wait(JobId(999)).is_none());
        assert!(!svc.cancel(JobId(999)));
    }

    #[test]
    fn drain_returns_submission_order_and_clears() {
        let svc = CecService::new(SvcConfig::default());
        let m = miter(&xor_net(2, false), &xor_net(2, true)).unwrap();
        let a = svc.submit(m.clone());
        let b = svc.submit(m);
        let results = svc.drain();
        assert_eq!(results.iter().map(|r| r.id).collect::<Vec<_>>(), vec![a, b]);
        assert!(svc.wait(a).is_none(), "drained jobs are gone");
        let stats = svc.stats();
        assert_eq!(stats.jobs_submitted, 2);
        assert_eq!(stats.jobs_completed, 2);
        assert!(
            stats.cache_hits > 0 || stats.job_memo_hits > 0,
            "a duplicate job must reuse prior work one way or the other: {stats:?}"
        );
    }

    #[test]
    fn duplicate_submission_settles_from_the_job_memo() {
        // Same disproof twice: the duplicate must report the identical
        // (still firing) counter-example without dispatching anything.
        let a = xor_net(3, false);
        let mut b = xor_net(3, true);
        let po1 = b.po(1);
        b.set_po(1, !po1);
        let m = miter(&a, &b).unwrap();
        let svc = CecService::new(SvcConfig::default());
        let first = svc.wait_take(svc.submit(m.clone())).unwrap();
        let shards_before = svc.stats().shards_total;
        let second = svc.wait_take(svc.submit(m.clone())).unwrap();
        assert!(second.stats.memo_hit, "stats: {:?}", second.stats);
        assert!(!first.stats.memo_hit);
        assert_eq!(second.stats.shards, first.stats.shards);
        assert_eq!(
            svc.stats().shards_total,
            shards_before,
            "memo hits must not re-shard"
        );
        match (&first.verdict, &second.verdict) {
            (Verdict::NotEquivalent(x), Verdict::NotEquivalent(y)) => {
                assert_eq!(x.inputs(), y.inputs());
                assert!(y.fires(&m));
            }
            other => panic!("expected matching disproofs, got {other:?}"),
        }
        assert_eq!(svc.stats().job_memo_hits, 1);
    }

    #[test]
    fn job_memo_capacity_zero_disables_memoization() {
        let svc = CecService::new(SvcConfig {
            job_memo_capacity: 0,
            ..SvcConfig::default()
        });
        let m = miter(&xor_net(2, false), &xor_net(2, true)).unwrap();
        svc.wait_take(svc.submit(m.clone())).unwrap();
        let r = svc.wait_take(svc.submit(m)).unwrap();
        assert!(!r.stats.memo_hit);
        assert_eq!(svc.stats().job_memo_hits, 0);
    }

    #[test]
    fn cancelled_jobs_never_poison_the_memo() {
        // A zero deadline settles the first run partial (cancelled); the
        // rerun without a deadline must prove fresh, not replay the
        // partial verdict.
        let svc = CecService::new(SvcConfig {
            workers: 1,
            ..SvcConfig::default()
        });
        let m = miter(&xor_net(3, false), &xor_net(3, true)).unwrap();
        let first = svc
            .wait_take(svc.submit_with_deadline(m.clone(), Some(Duration::ZERO)))
            .unwrap();
        assert!(first.stats.cancelled);
        let second = svc.wait_take(svc.submit(m)).unwrap();
        assert!(!second.stats.memo_hit, "partial results must not memoize");
        assert_eq!(second.verdict, Verdict::Equivalent);
    }

    #[test]
    fn wait_take_removes_the_job() {
        let svc = CecService::new(SvcConfig::default());
        let m = miter(&xor_net(2, false), &xor_net(2, true)).unwrap();
        let id = svc.submit(m);
        let r = svc.wait_take(id).expect("job exists");
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert!(svc.wait(id).is_none(), "wait_take must drop the entry");
    }

    #[test]
    fn stats_display_is_humane() {
        let s = SvcStats {
            jobs_submitted: 4,
            jobs_completed: 3,
            shards_total: 12,
            fused_shards: 4,
            fused_dispatches: 2,
            cache_hits: 6,
            cache_misses: 6,
            cache_len: 6,
            cache_evictions: 2,
            cache_routing_hits: 0,
            cache_semantic_hits: 3,
            cache_persist_loaded: 0,
            cache_persist_appended: 0,
            cancellations: 1,
            job_memo_hits: 5,
            worker_utilization: 0.5,
        };
        let text = s.to_string();
        assert!(text.contains("jobs 3/4"), "{text}");
        assert!(text.contains("4 fused in 2 dispatches"), "{text}");
        assert!(text.contains("cache 50%"), "{text}");
        assert!(text.contains("3 semantic"), "{text}");
        assert!(text.contains("2 evicted"), "{text}");
        assert!(text.contains("5 memoized"), "{text}");
        assert!(text.contains("1 cancelled"), "{text}");
    }

    #[test]
    fn manual_clock_makes_job_timing_deterministic() {
        // With an unadvanced manual clock every reported duration is
        // exactly zero — proof that job timing flows through the injected
        // clock and nothing falls back to the wall.
        let clock = Arc::new(parsweep_trace::ManualClock::new());
        let svc = CecService::new(SvcConfig {
            clock: clock.clone(),
            ..SvcConfig::default()
        });
        let m = miter(&xor_net(2, false), &xor_net(2, true)).unwrap();
        let id = svc.submit(m);
        let r = svc.wait(id).unwrap();
        assert_eq!(r.stats.queue_wait, Duration::ZERO);
        assert_eq!(r.stats.total, Duration::ZERO);

        // Advance the clock between submissions: the next job's total
        // reflects only manual time.
        clock.advance(Duration::from_secs(3));
        let m = miter(&xor_net(1, false), &xor_net(1, true)).unwrap();
        let id = svc.submit(m);
        let r = svc.wait(id).unwrap();
        assert_eq!(r.stats.total, Duration::ZERO, "frozen clock, zero total");
    }

    #[test]
    fn evictions_reach_stats_and_metrics() {
        let svc = CecService::new(SvcConfig {
            workers: 1,
            cache_capacity: 1,
            // Both cones here compute constant 0, so the semantic tier
            // would settle the second without a structural insert; turn
            // it off to exercise the LRU eviction path itself.
            semantic_max_vars: 0,
            ..SvcConfig::default()
        });
        // Two distinct cone structures through a single-entry cache: the
        // second insert evicts the first.
        let m1 = miter(&xor_net(1, false), &xor_net(1, true)).unwrap();
        let mut and_a = Aig::new();
        let xs = and_a.add_inputs(2);
        let f = and_a.and(xs[0], xs[1]);
        and_a.add_po(f);
        let mut and_b = Aig::new();
        let ys = and_b.add_inputs(2);
        let both = and_b.and(ys[0], ys[1]);
        let either = and_b.or(ys[0], ys[1]);
        let g = and_b.and(both, either);
        and_b.add_po(g);
        let m2 = miter(&and_a, &and_b).unwrap();
        svc.submit(m1);
        svc.submit(m2);
        svc.drain();
        let stats = svc.stats();
        assert!(stats.cache_evictions >= 1, "stats: {stats:?}");
        assert_eq!(stats.cache_len, 1);
        let text = svc.metrics_text();
        assert!(text.contains("parsweep_cache_evictions_total 1"), "{text}");
        assert!(text.contains("# TYPE parsweep_job_latency_seconds histogram"));
    }

    #[test]
    fn adaptive_mode_agrees_and_routes_repeat_traffic() {
        let svc = CecService::new(SvcConfig {
            workers: 1,
            prover: ProverMode::Adaptive,
            ..SvcConfig::default()
        });
        let m = miter(&xor_net(3, false), &xor_net(3, true)).unwrap();
        let id = svc.submit(m.clone());
        let r = svc.wait(id).unwrap();
        assert_eq!(r.verdict, Verdict::Equivalent);
        // Identical cones within the job: the first proof is cached as a
        // routed entry, so the sibling hits replay routing hints.
        assert!(r.stats.cache_hits >= 1, "stats: {:?}", r.stats);
        let stats = svc.stats();
        assert!(stats.cache_routing_hits >= 1, "stats: {stats:?}");
        assert!(svc.prover_stats().routing_hints >= 1);
        // A resubmitted job settles fully from the routed cache.
        let id = svc.submit(m);
        let r = svc.wait(id).unwrap();
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert_eq!(r.stats.cache_misses, 0);
    }

    #[test]
    fn adaptive_mode_lifts_a_firing_cex() {
        let a = xor_net(2, false);
        let mut b = xor_net(2, true);
        let po0 = b.po(0);
        b.set_po(0, !po0);
        let m = miter(&a, &b).unwrap();
        let svc = CecService::new(SvcConfig {
            prover: ProverMode::Adaptive,
            ..SvcConfig::default()
        });
        let id = svc.submit(m.clone());
        match svc.wait(id).unwrap().verdict {
            Verdict::NotEquivalent(cex) => assert!(cex.fires(&m), "lifted cex must fire"),
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn metrics_text_renders_prover_and_routing_series() {
        let svc = CecService::new(SvcConfig {
            workers: 1,
            prover: ProverMode::Adaptive,
            ..SvcConfig::default()
        });
        let m = miter(&xor_net(2, false), &xor_net(2, true)).unwrap();
        svc.submit(m);
        svc.drain();
        let text = svc.metrics_text();
        assert!(
            text.contains("parsweep_prove_engine_wins_total{engine=\"structural\"}"),
            "{text}"
        );
        assert!(
            text.contains("parsweep_prove_engine_cancelled_total{engine=\"sat_sweep\"}"),
            "{text}"
        );
        assert!(text.contains("parsweep_cache_routing_hits"), "{text}");
    }

    #[test]
    fn metrics_text_renders_fleet_counters() {
        let svc = CecService::new(SvcConfig::default());
        let m = miter(&xor_net(2, false), &xor_net(2, true)).unwrap();
        svc.submit(m);
        svc.drain();
        let text = svc.metrics_text();
        assert!(text.contains("parsweep_jobs_completed_total 1"), "{text}");
        assert!(
            !text.contains("parsweep_kernel_launches_total 0"),
            "fleet executors must have recorded launches: {text}"
        );
        assert!(
            text.contains("parsweep_queue_wait_seconds_count 1"),
            "{text}"
        );
        assert!(
            text.contains("parsweep_jobs_by_lane_total{lane=\"interactive\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn fused_dispatches_preserve_verdicts_and_count() {
        // Six tiny XOR cones: under a generous fuse threshold they batch
        // into fused dispatches, with identical verdicts and per-shard
        // cache accounting.
        let m = miter(&xor_net(6, false), &xor_net(6, true)).unwrap();
        let svc = CecService::new(SvcConfig {
            workers: 1,
            fuse_threshold: 1 << 20,
            ..SvcConfig::default()
        });
        let id = svc.submit(m.clone());
        let r = svc.wait(id).unwrap();
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert_eq!(r.stats.shards, 6);
        assert_eq!(r.stats.fused_shards, 6, "stats: {:?}", r.stats);
        assert_eq!(r.stats.cache_hits + r.stats.cache_misses, 6);
        let stats = svc.stats();
        assert_eq!(stats.fused_shards, 6);
        assert!(stats.fused_dispatches >= 1);

        // Unfused control on a fresh service: same verdict.
        let control = CecService::new(SvcConfig {
            workers: 1,
            ..SvcConfig::default()
        });
        let id = control.submit(m);
        assert_eq!(control.wait(id).unwrap().verdict, Verdict::Equivalent);
        assert_eq!(control.stats().fused_shards, 0);
    }

    #[test]
    fn fused_disproof_still_lifts_a_firing_cex() {
        let a = xor_net(4, false);
        let mut b = xor_net(4, true);
        let po2 = b.po(2);
        b.set_po(2, !po2);
        let m = miter(&a, &b).unwrap();
        let svc = CecService::new(SvcConfig {
            fuse_threshold: 1 << 20,
            ..SvcConfig::default()
        });
        let id = svc.submit(m.clone());
        match svc.wait(id).unwrap().verdict {
            Verdict::NotEquivalent(cex) => assert!(cex.fires(&m), "lifted cex must fire"),
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn per_client_stats_track_lanes_and_completion() {
        let svc = CecService::new(SvcConfig::default());
        let m = miter(&xor_net(2, false), &xor_net(2, true)).unwrap();
        let a = svc.submit_with_opts(
            m.clone(),
            SubmitOpts {
                lane: Lane::Interactive,
                client: 7,
                ..SubmitOpts::default()
            },
        );
        let b = svc.submit_with_opts(
            m,
            SubmitOpts {
                lane: Lane::Batch,
                client: 7,
                ..SubmitOpts::default()
            },
        );
        svc.wait(a).unwrap();
        svc.wait(b).unwrap();
        let clients = svc.client_stats();
        let (_, c7) = clients
            .iter()
            .find(|(id, _)| *id == 7)
            .expect("client 7 tracked");
        assert_eq!(c7.submitted, 2);
        assert_eq!(c7.completed, 2);
        assert_eq!(c7.jobs_by_lane, [1, 1]);
        assert!(svc.forget_client(7).is_some());
        assert!(svc.forget_client(7).is_none(), "entry dropped");
    }

    #[test]
    fn colliding_memo_keys_degrade_to_a_miss() {
        // The exact shape of the bug this memo design fixes: two
        // *different* miters whose structural hashes collide (forced
        // here by inserting under the same key). The unfixed memo served
        // whatever the key found — the first miter's verdict for the
        // second miter.
        let a = miter(&xor_net(1, false), &xor_net(1, true)).unwrap();
        let mut bad = xor_net(1, true);
        let po = bad.po(0);
        bad.set_po(0, !po);
        let b = miter(&xor_net(1, false), &bad).unwrap();
        assert!(!a.same_structure(&b));
        let (fa, fb) = (MiterFingerprint::of(&a), MiterFingerprint::of(&b));
        let mut memo = JobMemo::new(8);
        let settled = JobResult {
            id: JobId(1),
            verdict: Verdict::Equivalent,
            stats: JobStats::default(),
        };
        memo.insert(0x42, fa, settled);
        assert!(
            memo.lookup(0x42, &fa).is_some(),
            "the genuine duplicate still hits"
        );
        assert!(
            memo.lookup(0x42, &fb).is_none(),
            "a colliding different miter must miss, not inherit Equivalent"
        );
    }

    proptest::proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any two memo-key-colliding miters either share a fingerprint
        /// because they are the same structure, or the collision degrades
        /// to a miss — never a cross-served verdict.
        #[test]
        fn memo_collisions_never_cross_serve(wa in 1..5usize, wb in 1..5usize) {
            let a = miter(&xor_net(wa, false), &xor_net(wa, true)).unwrap();
            let b = miter(&xor_net(wb, false), &xor_net(wb, true)).unwrap();
            let (fa, fb) = (MiterFingerprint::of(&a), MiterFingerprint::of(&b));
            let mut memo = JobMemo::new(8);
            let settled = JobResult {
                id: JobId(1),
                verdict: Verdict::Equivalent,
                stats: JobStats::default(),
            };
            memo.insert(0x42, fa, settled);
            let served = memo.lookup(0x42, &fb);
            if a.same_structure(&b) {
                prop_assert!(served.is_some(), "true duplicates keep hitting");
            } else {
                prop_assert!(served.is_none(), "colliding non-duplicate was served");
            }
        }
    }

    #[test]
    fn semantic_tier_settles_structurally_new_cones() {
        // Two equivalent pairs whose miter cones compute the same
        // function (constant 0 over 2 PIs) through different structure:
        // the second job's cone misses the structural cache but settles
        // from the semantic tier seeded by the first.
        let m1 = miter(&xor_net(1, false), &xor_net(1, true)).unwrap();
        let mut a = Aig::new();
        let xs = a.add_inputs(2);
        let t = a.and(xs[0], xs[1]);
        a.add_po(t);
        let mut b = Aig::new();
        let ys = b.add_inputs(2);
        let u = b.and(ys[0], ys[1]);
        let v = b.and(ys[0], u); // redundant: y0 & (y0 & y1) == y0 & y1
        b.add_po(v);
        let m2 = miter(&a, &b).unwrap();
        let c1 = m1.extract_cone(&[0]).cone;
        let c2 = m2.extract_cone(&[0]).cone;
        assert!(
            !c1.same_structure(&c2),
            "the cones must differ structurally"
        );

        let svc = CecService::new(SvcConfig::default());
        let r1 = svc.wait(svc.submit(m1)).unwrap();
        assert_eq!(r1.verdict, Verdict::Equivalent);
        let r2 = svc.wait(svc.submit(m2)).unwrap();
        assert_eq!(r2.verdict, Verdict::Equivalent);
        assert_eq!(r2.stats.cache_hits, 1, "the second cone settled cached");
        let stats = svc.stats();
        assert_eq!(stats.cache_semantic_hits, 1, "…from the semantic tier");
    }

    #[test]
    fn semantic_tier_respects_the_disable_switch() {
        let svc = CecService::new(SvcConfig {
            semantic_max_vars: 0,
            ..SvcConfig::default()
        });
        let m1 = miter(&xor_net(1, false), &xor_net(1, true)).unwrap();
        let mut a = Aig::new();
        let xs = a.add_inputs(2);
        let t = a.and(xs[0], xs[1]);
        a.add_po(t);
        let mut b = Aig::new();
        let ys = b.add_inputs(2);
        let u = b.and(ys[0], ys[1]);
        let v = b.and(ys[0], u); // redundant: y0 & (y0 & y1) == y0 & y1
        b.add_po(v);
        let m2 = miter(&a, &b).unwrap();
        let r1 = svc.wait(svc.submit(m1)).unwrap();
        let r2 = svc.wait(svc.submit(m2)).unwrap();
        assert_eq!(r1.verdict, Verdict::Equivalent);
        assert_eq!(r2.verdict, Verdict::Equivalent);
        assert_eq!(svc.stats().cache_semantic_hits, 0);
    }
}

//! Minimal JSON-lines support for the service front-end.
//!
//! The service protocol only ever exchanges *flat* JSON objects — string,
//! number, boolean or null fields, one object per line — so this module
//! implements exactly that subset by hand (the build environment is
//! offline; no serde). Nested objects and arrays are rejected.

use std::fmt;

/// A flat JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; the protocol's integers are small).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure, with a human-readable reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Parses one line holding a flat JSON object into (key, value) pairs in
/// source order. Duplicate keys are kept (last one wins for lookups via
/// [`get`]).
pub fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(JsonError(format!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError("trailing characters after object".into()));
    }
    Ok(fields)
}

/// Last value under `key`, if present.
pub fn get<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Emits a flat JSON object on one line, fields in the given order.
pub fn emit_object(fields: &[(&str, JsonValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        emit_string(&mut out, key);
        out.push(':');
        match value {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::Str(s) => emit_string(&mut out, s),
        }
    }
    out.push('}');
    out
}

fn emit_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), JsonError> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(JsonError(format!(
                "expected '{}', got {other:?}",
                want as char
            ))),
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{' | b'[') => Err(JsonError("nested objects/arrays unsupported".into())),
            Some(_) => self.number(),
            None => Err(JsonError("unexpected end of input".into())),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError(format!("invalid literal, expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid number bytes".into()))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(JsonError("unterminated string".into())),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(JsonError("truncated \\u escape".into()));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| JsonError("invalid \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError("invalid \\u escape".into()))?;
                        self.pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError("invalid \\u codepoint".into()))?,
                        );
                    }
                    other => return Err(JsonError(format!("bad escape {other:?}"))),
                },
                // Multi-byte UTF-8: pass the raw bytes through unchanged.
                Some(b) if b >= 0x80 => {
                    let start = self.pos - 1;
                    while matches!(self.peek(), Some(c) if c >= 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
                    );
                }
                Some(b) => out.push(b as char),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let fields =
            parse_object(r#"{"op":"submit","file":"m.aag","deadline_ms":150,"sat":true,"x":null}"#)
                .unwrap();
        assert_eq!(get(&fields, "op").unwrap().as_str(), Some("submit"));
        assert_eq!(get(&fields, "deadline_ms").unwrap().as_f64(), Some(150.0));
        assert_eq!(get(&fields, "sat").unwrap().as_bool(), Some(true));
        assert_eq!(get(&fields, "x"), Some(&JsonValue::Null));
        assert_eq!(get(&fields, "missing"), None);
    }

    #[test]
    fn round_trips_escapes() {
        let line = emit_object(&[
            ("path", JsonValue::Str("a\\b \"c\"\n\t".into())),
            ("n", JsonValue::Num(-2.5)),
        ]);
        let fields = parse_object(&line).unwrap();
        assert_eq!(
            get(&fields, "path").unwrap().as_str(),
            Some("a\\b \"c\"\n\t")
        );
        assert_eq!(get(&fields, "n").unwrap().as_f64(), Some(-2.5));
    }

    #[test]
    fn integers_emit_without_fraction() {
        let line = emit_object(&[("job", JsonValue::Num(3.0))]);
        assert_eq!(line, r#"{"job":3}"#);
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_object(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_object(r#"{"a":[1]}"#).is_err());
        assert!(parse_object(r#"{"a":1} trailing"#).is_err());
        assert!(parse_object(r#"{"a" 1}"#).is_err());
        assert!(parse_object("").is_err());
    }

    #[test]
    fn empty_object_and_unicode() {
        assert_eq!(parse_object("{}").unwrap(), vec![]);
        let fields = parse_object(r#"{"s":"été"}"#).unwrap();
        assert_eq!(get(&fields, "s").unwrap().as_str(), Some("été"));
    }
}

//! Shared request-handling core of the JSON-lines front-ends.
//!
//! Both front-ends — the single-client stdin loop (`svc` binary) and the
//! multi-client TCP server (`parsweep-net`) — speak the same flat-object
//! protocol; this module holds everything protocol-shaped so the two
//! stay in lock-step: request parsing ([`parse_submit`]), miter loading
//! (AIGER files or the built-in adder demos), and response-event
//! builders. Event builders return *field vectors* rather than finished
//! strings so a multiplexing front-end can append its per-request `id`
//! before serializing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use parsweep_aig::{miter, read_aiger_file, Aig, Lit};
use parsweep_sat::Verdict;

use crate::jsonl::{emit_object, get, parse_object, JsonValue};
use crate::pool::Lane;
use crate::service::{CecService, JobResult};

/// Bounded path → parsed-AIG cache for a front-end's submit path.
///
/// A fleet of clients sweeping the same suite names the same AIGER
/// files over and over, and parsing even a few-hundred-gate file costs
/// tens of microseconds — under duplicate-heavy load that dwarfs the
/// settle cost of a memoized job. Each front-end threads one of these
/// through [`parse_submit`] so a repeated path is read and parsed once.
/// The cache resets wholesale when full; files are assumed immutable
/// for the front-end's lifetime (the usual bench/CI arrangement) —
/// restart the front-end to pick up edited files.
pub struct MiterCache {
    map: Mutex<HashMap<String, Arc<Aig>>>,
    capacity: usize,
}

impl Default for MiterCache {
    fn default() -> Self {
        MiterCache::new(256)
    }
}

impl MiterCache {
    /// An empty cache holding at most `capacity` parsed files
    /// (`0` disables caching).
    pub fn new(capacity: usize) -> Self {
        MiterCache {
            map: Mutex::new(HashMap::new()),
            capacity,
        }
    }

    /// Reads and parses `path`, serving repeats from the cache.
    pub fn load(&self, path: &str) -> Result<Arc<Aig>, String> {
        if self.capacity == 0 {
            let aig = read_aiger_file(path).map_err(|e| format!("{path}: {e:?}"))?;
            return Ok(Arc::new(aig));
        }
        if let Some(hit) = self.map.lock().unwrap().get(path) {
            return Ok(Arc::clone(hit));
        }
        let aig = Arc::new(read_aiger_file(path).map_err(|e| format!("{path}: {e:?}"))?);
        let mut map = self.map.lock().unwrap();
        if map.len() >= self.capacity {
            map.clear();
        }
        map.insert(path.to_owned(), Arc::clone(&aig));
        Ok(aig)
    }
}

/// A parsed `{"op":"submit"}` request: the miter to check plus the
/// options the protocol carries.
pub struct SubmitRequest {
    /// The miter to check.
    pub miter: Aig,
    /// Per-job deadline from `"deadline_ms"`.
    pub deadline: Option<Duration>,
    /// Priority lane from `"lane":"interactive"|"batch"` (default
    /// interactive).
    pub lane: Lane,
}

/// Parses the submit-specific fields of a request object.
pub fn parse_submit(
    fields: &[(String, JsonValue)],
    files: &MiterCache,
) -> Result<SubmitRequest, String> {
    let miter = load_miter(fields, files)?;
    let deadline = get(fields, "deadline_ms")
        .and_then(JsonValue::as_f64)
        .map(|ms| Duration::from_millis(ms.max(0.0) as u64));
    let lane = match get(fields, "lane").and_then(JsonValue::as_str) {
        None => Lane::Interactive,
        Some(name) => Lane::from_name(name).ok_or_else(|| format!("unknown lane '{name}'"))?,
    };
    Ok(SubmitRequest {
        miter,
        deadline,
        lane,
    })
}

/// The request id (`"id"` field) of a parsed request, if present.
/// Front-ends echo it on every response event so a client pipelining
/// requests over one connection can match responses back up.
pub fn request_id(fields: &[(String, JsonValue)]) -> Option<u64> {
    get(fields, "id")
        .and_then(JsonValue::as_f64)
        .map(|v| v as u64)
}

/// Appends `("id", n)` when a request id is present — every response
/// builder's final step in a multiplexing front-end.
pub fn push_id(fields: &mut Vec<(&'static str, JsonValue)>, id: Option<u64>) {
    if let Some(id) = id {
        fields.push(("id", JsonValue::Num(id as f64)));
    }
}

/// Loads the miter a submit request describes: an AIGER `"miter"` file,
/// a `"left"`+`"right"` pair to miter, or a built-in `"demo"`. File
/// reads go through the front-end's [`MiterCache`].
pub fn load_miter(fields: &[(String, JsonValue)], files: &MiterCache) -> Result<Aig, String> {
    if let Some(path) = get(fields, "miter").and_then(JsonValue::as_str) {
        return files.load(path).map(|aig| (*aig).clone());
    }
    if let (Some(left), Some(right)) = (
        get(fields, "left").and_then(JsonValue::as_str),
        get(fields, "right").and_then(JsonValue::as_str),
    ) {
        let a = files.load(left)?;
        let b = files.load(right)?;
        return miter(&a, &b).map_err(|e| format!("miter: {e:?}"));
    }
    if let Some(demo) = get(fields, "demo").and_then(JsonValue::as_str) {
        let width = get(fields, "width")
            .and_then(JsonValue::as_f64)
            .map(|w| w as usize)
            .unwrap_or(8)
            .clamp(1, 256);
        let corrupt = get(fields, "corrupt")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        return demo_miter(demo, width, corrupt);
    }
    Err("submit needs 'miter', 'left'+'right', or 'demo'".into())
}

/// Two structurally different `width`-bit adders, mitered; `corrupt`
/// flips one PO so the miter is satisfiable.
pub fn demo_miter(kind: &str, width: usize, corrupt: bool) -> Result<Aig, String> {
    if kind != "adder" {
        return Err(format!("unknown demo '{kind}' (try \"adder\")"));
    }
    let a = demo_adder(width, true);
    let mut b = demo_adder(width, false);
    if corrupt {
        let po0 = b.po(0);
        b.set_po(0, !po0);
    }
    miter(&a, &b).map_err(|e| format!("miter: {e:?}"))
}

/// A `width`-bit adder: ripple carry (`ripple`) or majority-gate carry.
/// The two variants are structurally different but equivalent — the
/// protocol's offline demo workload.
pub fn demo_adder(width: usize, ripple: bool) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs(width);
    let b = aig.add_inputs(width);
    let mut carry = Lit::FALSE;
    for i in 0..width {
        let axb = aig.xor(a[i], b[i]);
        let sum = aig.xor(axb, carry);
        carry = if ripple {
            let t = aig.and(a[i], b[i]);
            let u = aig.and(axb, carry);
            aig.or(t, u)
        } else {
            aig.maj3(a[i], b[i], carry)
        };
        aig.add_po(sum);
    }
    aig.add_po(carry);
    aig
}

/// The fields of a `result` event for one settled job.
pub fn result_fields(result: &JobResult) -> Vec<(&'static str, JsonValue)> {
    let verdict = match &result.verdict {
        Verdict::Equivalent => "equivalent",
        Verdict::NotEquivalent(_) => "not-equivalent",
        Verdict::Undecided => "undecided",
    };
    let mut fields = vec![
        ("event", JsonValue::Str("result".into())),
        ("job", JsonValue::Num(result.id.0 as f64)),
        ("verdict", JsonValue::Str(verdict.into())),
        ("shards", JsonValue::Num(result.stats.shards as f64)),
        (
            "fused_shards",
            JsonValue::Num(result.stats.fused_shards as f64),
        ),
        ("cache_hits", JsonValue::Num(result.stats.cache_hits as f64)),
        (
            "cache_misses",
            JsonValue::Num(result.stats.cache_misses as f64),
        ),
        (
            "queue_wait_ms",
            JsonValue::Num(result.stats.queue_wait.as_secs_f64() * 1000.0),
        ),
        (
            "total_ms",
            JsonValue::Num(result.stats.total.as_secs_f64() * 1000.0),
        ),
        ("cancelled", JsonValue::Bool(result.stats.cancelled)),
        ("memoized", JsonValue::Bool(result.stats.memo_hit)),
    ];
    if let Verdict::NotEquivalent(cex) = &result.verdict {
        let bits: String = cex
            .inputs()
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        fields.push(("cex", JsonValue::Str(bits)));
    }
    fields
}

/// The fields of a `stats` event: the service counters.
pub fn stats_fields(svc: &CecService) -> Vec<(&'static str, JsonValue)> {
    let s = svc.stats();
    vec![
        ("event", JsonValue::Str("stats".into())),
        ("jobs_submitted", JsonValue::Num(s.jobs_submitted as f64)),
        ("jobs_completed", JsonValue::Num(s.jobs_completed as f64)),
        ("shards", JsonValue::Num(s.shards_total as f64)),
        ("fused_shards", JsonValue::Num(s.fused_shards as f64)),
        (
            "fused_dispatches",
            JsonValue::Num(s.fused_dispatches as f64),
        ),
        ("cache_hits", JsonValue::Num(s.cache_hits as f64)),
        ("cache_misses", JsonValue::Num(s.cache_misses as f64)),
        ("cache_hit_rate", JsonValue::Num(s.cache_hit_rate())),
        ("cache_evictions", JsonValue::Num(s.cache_evictions as f64)),
        (
            "cache_semantic_hits",
            JsonValue::Num(s.cache_semantic_hits as f64),
        ),
        (
            "cache_persist_loaded",
            JsonValue::Num(s.cache_persist_loaded as f64),
        ),
        (
            "cache_persist_appended",
            JsonValue::Num(s.cache_persist_appended as f64),
        ),
        ("job_memo_hits", JsonValue::Num(s.job_memo_hits as f64)),
        ("cancellations", JsonValue::Num(s.cancellations as f64)),
        ("worker_utilization", JsonValue::Num(s.worker_utilization)),
    ]
}

/// The fields of an `error` event.
pub fn error_fields(message: String) -> Vec<(&'static str, JsonValue)> {
    vec![
        ("event", JsonValue::Str("error".into())),
        ("message", JsonValue::Str(message)),
    ]
}

/// Handles one request line in the *single-client* (stdin) style: submit
/// never blocks on admission (the stdin loop has no admission control),
/// drain settles everything. Returns the response events to write, in
/// order. The TCP server composes its own submit path from
/// [`parse_submit`] + admission, but shares every other op through the
/// same builders. `files` is the front-end's miter-file cache,
/// constructed once next to the service.
pub fn handle_request(
    svc: &CecService,
    files: &MiterCache,
    line: &str,
) -> Result<Vec<String>, String> {
    let fields = parse_object(line).map_err(|e| e.to_string())?;
    let op = get(&fields, "op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing 'op'".to_string())?;
    let id = request_id(&fields);
    let emit = |mut f: Vec<(&'static str, JsonValue)>| {
        push_id(&mut f, id);
        emit_object(&f)
    };
    match op {
        "submit" => {
            let req = parse_submit(&fields, files)?;
            let job = svc.submit_with_opts(
                req.miter,
                crate::service::SubmitOpts {
                    deadline: req.deadline,
                    lane: req.lane,
                    client: 0,
                },
            );
            Ok(vec![emit(vec![
                ("event", JsonValue::Str("submitted".into())),
                ("job", JsonValue::Num(job.0 as f64)),
            ])])
        }
        "drain" => {
            let mut events: Vec<String> =
                svc.drain().iter().map(|r| emit(result_fields(r))).collect();
            events.push(emit(stats_fields(svc)));
            Ok(events)
        }
        "stats" => Ok(vec![emit(stats_fields(svc))]),
        "metrics" => Ok(vec![emit(vec![
            ("event", JsonValue::Str("metrics".into())),
            ("text", JsonValue::Str(svc.metrics_text())),
        ])]),
        other => Err(format!("unknown op '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SvcConfig;

    #[test]
    fn submit_parses_lane_and_deadline() {
        let fields = parse_object(
            r#"{"op":"submit","demo":"adder","width":2,"lane":"batch","deadline_ms":500}"#,
        )
        .unwrap();
        let req = parse_submit(&fields, &MiterCache::default()).unwrap();
        assert_eq!(req.lane, Lane::Batch);
        assert_eq!(req.deadline, Some(Duration::from_millis(500)));
        assert!(req.miter.num_pos() > 0);
    }

    #[test]
    fn submit_rejects_unknown_lane() {
        let fields = parse_object(r#"{"op":"submit","demo":"adder","lane":"bulk"}"#).unwrap();
        let err = match parse_submit(&fields, &MiterCache::default()) {
            Err(e) => e,
            Ok(_) => panic!("unknown lane must be rejected"),
        };
        assert!(err.contains("unknown lane"), "{err}");
    }

    #[test]
    fn request_id_echoes_on_responses() {
        let svc = CecService::new(SvcConfig::default());
        let files = MiterCache::default();
        let events = handle_request(
            &svc,
            &files,
            r#"{"op":"submit","demo":"adder","width":2,"id":42}"#,
        )
        .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("\"id\":42"), "{}", events[0]);
        let events = handle_request(&svc, &files, r#"{"op":"drain","id":43}"#).unwrap();
        assert!(events.iter().all(|e| e.contains("\"id\":43")), "{events:?}");
    }

    #[test]
    fn miter_cache_parses_a_file_once() {
        let dir = std::env::temp_dir().join(format!("parsweep_mc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.aig");
        let m = demo_miter("adder", 2, false).unwrap();
        parsweep_aig::write_aiger_file(&m, &path).unwrap();
        let cache = MiterCache::new(4);
        let a = cache.load(path.to_str().unwrap()).unwrap();
        // Unlink the file: a second load can only succeed via the cache.
        std::fs::remove_file(&path).unwrap();
        let b = cache.load(path.to_str().unwrap()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat load must be the cached parse");
        assert!(
            MiterCache::new(0).load(path.to_str().unwrap()).is_err(),
            "capacity 0 must bypass the cache"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn demo_adders_are_equivalent_structures() {
        let m = demo_miter("adder", 4, false).unwrap();
        assert_eq!(m.num_pis(), 8, "miter shares the adders' 2*width PIs");
        assert!(demo_miter("ripple", 4, false).is_err());
    }
}

//! Sharding a miter into independently provable output-cone sub-jobs.
//!
//! A miter is equivalent iff *every* PO is proved constant zero, and a
//! PO's verdict depends only on its transitive-fanin cone — so a job
//! splits along output cones into sub-jobs that workers prove in any
//! order, on any worker, with verdicts composing soundly: one disproof
//! (lifted back through the extraction's PI map) disproves the whole
//! miter; all cones proved means the miter is proved; anything left
//! undecided leaves the job undecided.

use parsweep_aig::{Aig, ConeExtraction, Lit};

/// How a submitted miter splits into sub-jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPolicy {
    /// One shard per PO cone. Maximal parallelism and maximal result-cache
    /// reuse (structurally repeated cones each become their own cacheable
    /// unit), at the price of re-simulating logic shared between cones.
    #[default]
    PerOutput,
    /// One shard per connected component of support-sharing PO cones:
    /// cones that touch a common PI travel together, so no gate is ever
    /// simulated by two shards.
    Connected,
}

/// One independently provable sub-job of a miter.
#[derive(Clone, Debug)]
pub struct Shard {
    /// The extracted standalone cone plus the maps that translate
    /// counter-examples back to the original miter.
    pub extraction: ConeExtraction,
    /// Canonical structural hash of the cone — the result-cache key.
    pub hash: u64,
}

/// Shards a miter into output-cone sub-jobs under the given policy.
///
/// Constant-`false` POs are already proved and produce no shard; every
/// other PO (including constant-`true` POs, which are trivial disproofs)
/// lands in exactly one shard. An empty result therefore means the miter
/// is proved as submitted.
pub fn shard_miter(miter: &Aig, policy: ShardPolicy) -> Vec<Shard> {
    let groups = match policy {
        ShardPolicy::PerOutput => (0..miter.num_pos())
            .filter(|&i| miter.po(i) != Lit::FALSE)
            .map(|i| vec![i])
            .collect(),
        ShardPolicy::Connected => connected_groups(miter),
    };
    groups
        .into_iter()
        .map(|group| {
            let extraction = miter.extract_cone(&group);
            let hash = extraction.cone.structural_hash();
            Shard { extraction, hash }
        })
        .collect()
}

/// Groups live PO indices into connected components of support sharing.
fn connected_groups(miter: &Aig) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(miter.num_pos());
    // First PO to touch a PI owns it; later POs union with the owner.
    let mut pi_owner: Vec<Option<usize>> = vec![None; miter.num_nodes()];
    let mut live: Vec<usize> = Vec::new();
    for i in 0..miter.num_pos() {
        let po = miter.po(i);
        if po == Lit::FALSE {
            continue;
        }
        live.push(i);
        if po.var().is_const() {
            continue; // constant-true: empty support, singleton group
        }
        for v in miter.support(&[po.var()]) {
            match pi_owner[v.index()] {
                Some(owner) => uf.union(i, owner),
                None => pi_owner[v.index()] = Some(i),
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of: Vec<Option<usize>> = vec![None; miter.num_pos()];
    for &i in &live {
        let root = uf.find(i);
        let g = *group_of[root].get_or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(i);
    }
    groups
}

/// Minimal union-find with path halving; no rank tracking is needed at
/// PO-count scale.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint cones plus one PO spanning both.
    fn bridged() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let f = aig.and(xs[0], xs[1]);
        let g = aig.and(xs[2], xs[3]);
        let h = aig.xor(f, g);
        aig.add_po(f);
        aig.add_po(g);
        aig.add_po(h);
        aig
    }

    #[test]
    fn per_output_shards_each_live_po() {
        let mut aig = bridged();
        aig.add_po(Lit::FALSE); // already proved, no shard
        let shards = shard_miter(&aig, ShardPolicy::PerOutput);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].extraction.po_map, vec![0]);
        assert_eq!(shards[2].extraction.cone.num_pis(), 4);
    }

    #[test]
    fn connected_merges_support_sharing_cones() {
        let aig = bridged();
        // PO2 bridges PO0's and PO1's supports: one component.
        let shards = shard_miter(&aig, ShardPolicy::Connected);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].extraction.po_map, vec![0, 1, 2]);
    }

    #[test]
    fn connected_keeps_disjoint_cones_apart() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let f = aig.and(xs[0], xs[1]);
        let g = aig.or(xs[2], xs[3]);
        aig.add_po(f);
        aig.add_po(g);
        let shards = shard_miter(&aig, ShardPolicy::Connected);
        assert_eq!(shards.len(), 2);
    }

    #[test]
    fn constant_true_po_is_its_own_shard() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        aig.add_po(f);
        aig.add_po(Lit::TRUE);
        for policy in [ShardPolicy::PerOutput, ShardPolicy::Connected] {
            let shards = shard_miter(&aig, policy);
            assert_eq!(shards.len(), 2, "{policy:?}");
            let trivial = shards
                .iter()
                .find(|s| s.extraction.cone.num_pis() == 0)
                .expect("constant-true shard");
            assert_eq!(trivial.extraction.cone.pos(), &[Lit::TRUE]);
        }
    }

    #[test]
    fn identical_cones_share_a_hash() {
        // The same function twice on disjoint PIs: per-output shards must
        // collide in the cache key.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let f = aig.and(xs[0], xs[1]);
        let g = aig.and(xs[2], xs[3]);
        aig.add_po(f);
        aig.add_po(g);
        let shards = shard_miter(&aig, ShardPolicy::PerOutput);
        assert_eq!(shards[0].hash, shards[1].hash);
        assert!(shards[0]
            .extraction
            .cone
            .same_structure(&shards[1].extraction.cone));
    }
}

//! Graceful-shutdown plumbing shared by every front-end.
//!
//! One process-wide flag, set from Unix signal handlers (SIGINT /
//! SIGTERM) or programmatically (broken stdout pipe, TCP server stop):
//! front-end loops poll [`requested`] between requests and, once it
//! trips, stop accepting work, drain what is in flight, report final
//! stats, and exit — instead of dying mid-job. Signal handlers may only
//! touch async-signal-safe state, so the handler does exactly one thing:
//! a relaxed store into a static [`AtomicBool`].

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide shutdown request. Static because signal handlers
/// cannot carry closure state.
static REQUESTED: AtomicBool = AtomicBool::new(false);

/// True once a shutdown has been requested (signal or programmatic).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Requests a graceful shutdown — the programmatic twin of a SIGINT,
/// used when stdout's pipe breaks or a server is asked to stop.
pub fn request() {
    REQUESTED.store(true, Ordering::Relaxed);
}

/// Re-arms the flag. Test-only: signal state is process-global, and the
/// test harness runs many tests in one process.
#[cfg(test)]
pub(crate) fn reset() {
    REQUESTED.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
mod sys {
    use std::os::raw::c_int;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        /// POSIX `signal(2)`. Declared directly — libc is always linked
        /// by std on Unix — to avoid pulling in a crate for two signal
        /// numbers.
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    /// Async-signal-safe by construction: one relaxed atomic store.
    extern "C" fn on_signal(_signum: c_int) {
        super::request();
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the POSIX function with the declared
        // signature; `on_signal` is a non-unwinding `extern "C"` fn that
        // performs only an async-signal-safe atomic store.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Installs SIGINT/SIGTERM handlers that set the shutdown flag. A no-op
/// on non-Unix platforms (the flag still works programmatically).
pub fn install_signal_handlers() {
    #[cfg(unix)]
    sys::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the flag is process-global state, and the
    // harness runs tests concurrently.
    #[test]
    fn flag_trips_programmatically_and_from_sigint() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());

        #[cfg(unix)]
        {
            extern "C" {
                /// POSIX `raise(3)`: deliver a signal to the calling thread.
                fn raise(signum: std::os::raw::c_int) -> std::os::raw::c_int;
            }
            install_signal_handlers();
            reset();
            // SAFETY: raising SIGINT with our handler installed performs
            // one atomic store and returns; no other process state is
            // touched.
            unsafe {
                raise(2);
            }
            assert!(requested(), "handler must set the flag");
        }
        reset();
    }
}

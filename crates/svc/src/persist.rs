//! Disk persistence for the semantic cache tier.
//!
//! Settled canonical verdicts are append-only facts — an NPN class's
//! satisfiability never changes — so the persistent tier is a plain
//! line-oriented append log. One record per line:
//!
//! ```text
//! sem1 <k> <canon-hex> <one-index|-> <zero-index|-> [<engine> <cost-micros>]
//! ```
//!
//! where `<canon-hex>` is the canonical truth table in
//! [`TruthTable::to_hex`] notation, `<one-index>` is a canonical
//! assignment on which the function is 1 (`-` when it is constant 0,
//! i.e. the class is equivalent), `<zero-index>` the dual, and the
//! optional engine/cost pair replays into the adaptive prover exactly
//! like an in-memory [`RoutingInfo`](crate::RoutingInfo) hit.
//!
//! Loading is tolerant by design: a truncated tail, an editor's stray
//! line, or a record whose witnesses contradict its own table are
//! *skipped and counted*, never fatal — a damaged cache file degrades to
//! a smaller corpus, not a dead service. Every surviving record is
//! internally consistent, and the in-memory tier re-verifies against the
//! probing cone anyway, so a hand-forged record can waste a probe but
//! cannot produce a wrong verdict.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Mutex;

use parsweep_sat::EngineKind;
use parsweep_sim::{TruthTable, MAX_NPN_VARS};

use crate::cache::RoutingInfo;

/// Line tag of the current record format.
pub const PERSIST_RECORD_TAG: &str = "sem1";

/// One decoded semantic verdict record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistRecord {
    /// The canonical truth table (masked; `from_hex` output).
    pub canon: TruthTable,
    /// A canonical assignment index with value 1, if any.
    pub ones_witness: Option<u64>,
    /// A canonical assignment index with value 0, if any.
    pub zeros_witness: Option<u64>,
    /// Engine routing of the proof that settled the class.
    pub routing: Option<RoutingInfo>,
}

/// Encodes a record as one log line (without trailing newline).
pub fn encode_record(rec: &PersistRecord) -> String {
    let witness = |w: Option<u64>| w.map_or_else(|| "-".to_string(), |i| i.to_string());
    let mut line = format!(
        "{PERSIST_RECORD_TAG} {} {} {} {}",
        rec.canon.num_vars(),
        rec.canon.to_hex(),
        witness(rec.ones_witness),
        witness(rec.zeros_witness),
    );
    if let Some(r) = rec.routing {
        line.push_str(&format!(" {} {}", r.engine.name(), r.cost_micros));
    }
    line
}

/// Decodes one log line; `None` for anything malformed or inconsistent.
pub fn decode_record(line: &str) -> Option<PersistRecord> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != PERSIST_RECORD_TAG {
        return None;
    }
    let k: usize = parts.next()?.parse().ok()?;
    if k > MAX_NPN_VARS {
        return None;
    }
    let canon = TruthTable::from_hex(k, parts.next()?)?;
    let witness = |tok: &str| -> Option<Option<u64>> {
        if tok == "-" {
            Some(None)
        } else {
            let i: u64 = tok.parse().ok()?;
            (i < 1u64 << k).then_some(Some(i))
        }
    };
    let ones_witness = witness(parts.next()?)?;
    let zeros_witness = witness(parts.next()?)?;
    let routing = match parts.next() {
        None => None,
        Some(name) => {
            let engine = EngineKind::from_name(name)?;
            let cost_micros: u64 = parts.next()?.parse().ok()?;
            Some(RoutingInfo {
                engine,
                cost_micros,
            })
        }
    };
    if parts.next().is_some() {
        return None; // trailing junk
    }
    // Witnesses must tell the truth about their own table.
    let consistent = |w: Option<u64>, want: bool, absent_iff: bool| match w {
        Some(i) => canon.value(i as usize) == want,
        None => absent_iff,
    };
    if !consistent(ones_witness, true, canon.is_zero())
        || !consistent(zeros_witness, false, canon.is_ones())
    {
        return None;
    }
    Some(PersistRecord {
        canon,
        ones_witness,
        zeros_witness,
        routing,
    })
}

/// Reads every valid record from `path`. Returns the records and the
/// number of lines skipped as corrupt. A missing file is an empty corpus
/// (fresh start); other I/O errors surface to the caller.
pub fn load_records(path: &Path) -> io::Result<(Vec<PersistRecord>, usize)> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in BufReader::new(file).split(b'\n') {
        let line = line?;
        let text = String::from_utf8_lossy(&line);
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        match decode_record(text) {
            Some(rec) => records.push(rec),
            None => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// An append handle to the persistent log. Each record is written as one
/// `write_all` of a full line, so a crash can at worst truncate the final
/// line — which the tolerant loader then skips.
#[derive(Debug)]
pub struct PersistLog {
    file: Mutex<File>,
}

impl PersistLog {
    /// Opens (creating if needed) the log for appending.
    pub fn open_append(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(PersistLog {
            file: Mutex::new(file),
        })
    }

    /// Appends one record; true on success. Write errors are reported to
    /// the caller as a skipped append, never a panic — losing a record
    /// only costs a future re-proof.
    pub fn append(&self, rec: &PersistRecord) -> bool {
        let mut line = encode_record(rec);
        line.push('\n');
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(line.as_bytes()).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PersistRecord {
        PersistRecord {
            canon: TruthTable::from_fn(3, |i| i == 5 || i == 6),
            ones_witness: Some(5),
            zeros_witness: Some(0),
            routing: Some(RoutingInfo {
                engine: EngineKind::SatSweep,
                cost_micros: 777,
            }),
        }
    }

    #[test]
    fn records_round_trip() {
        let rec = sample();
        assert_eq!(decode_record(&encode_record(&rec)), Some(rec.clone()));
        let bare = PersistRecord {
            routing: None,
            ..rec
        };
        assert_eq!(decode_record(&encode_record(&bare)), Some(bare));
        let zero = PersistRecord {
            canon: TruthTable::zeros(2),
            ones_witness: None,
            zeros_witness: Some(0),
            routing: None,
        };
        assert_eq!(decode_record(&encode_record(&zero)), Some(zero));
    }

    #[test]
    fn corrupt_lines_are_rejected() {
        let good = encode_record(&sample());
        for bad in [
            "".to_string(),
            "sem0 3 60 5 0".to_string(),             // wrong tag
            "sem1 9 60 5 0".to_string(),             // k too large
            "sem1 3 zz 5 0".to_string(),             // bad hex
            "sem1 3 60 99 0".to_string(),            // witness out of range
            "sem1 3 60 0 0".to_string(),             // ones witness on a 0-bit
            "sem1 3 60 - 0".to_string(),             // missing ones on a sat table
            "sem1 3 60 5 0 nosuch 1".to_string(),    // unknown engine
            "sem1 3 60 5 0 sat_sweep x".to_string(), // bad cost
            format!("{good} extra"),                 // trailing junk
            good[..good.len() - 3].to_string(),      // truncated tail
        ] {
            assert_eq!(decode_record(&bad), None, "line {bad:?}");
        }
    }

    #[test]
    fn load_skips_garbage_and_missing_file_is_empty() {
        let dir = std::env::temp_dir().join(format!("parsweep-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.log");
        let rec = sample();
        std::fs::write(
            &path,
            format!("{}\nnot a record\n\n{}", encode_record(&rec), "sem1 3 tr"),
        )
        .unwrap();
        let (records, skipped) = load_records(&path).unwrap();
        assert_eq!(records, vec![rec]);
        assert_eq!(skipped, 2);
        let missing = dir.join("nope.log");
        assert_eq!(load_records(&missing).unwrap(), (Vec::new(), 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_then_load() {
        let dir = std::env::temp_dir().join(format!("parsweep-append-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log");
        let log = PersistLog::open_append(&path).unwrap();
        let rec = sample();
        assert!(log.append(&rec));
        assert!(log.append(&rec));
        drop(log);
        let (records, skipped) = load_records(&path).unwrap();
        assert_eq!(records, vec![rec.clone(), rec]);
        assert_eq!(skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

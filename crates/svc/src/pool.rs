//! A lane-aware work-stealing worker pool on std primitives.
//!
//! Each worker owns one deque *per priority lane*; submission round-robins
//! jobs across the deques of the job's lane, a worker pops its own deque
//! from the front and steals from the back of others when idle. A single
//! gate (mutex + condvar over the pending-job count) puts truly idle
//! workers to sleep without a lost wakeup: a worker only waits while the
//! pending count is zero.
//!
//! **Lanes** ([`Lane`]): interactive work is preferred over batch work,
//! but not absolutely — every [`BATCH_SHARE`]'th dequeue checks the batch
//! deques first, so a flood of interactive jobs cannot starve batch work
//! entirely, while batch floods never delay interactive jobs by more than
//! the job currently executing.
//!
//! **Utilization accounting**: busy time is measured against the pool's
//! *active window* — from the first job dequeue to the last job settle
//! (extended to "now" while anything is pending or running) — not against
//! whole-process wall clock. A service that sits idle between bursts
//! therefore reports how busy its workers were *while there was work*,
//! which is the number a saturation bench needs.
//!
//! The pool exists to multiplex many *small* sub-jobs (sharded CEC cones)
//! over a few OS threads; jobs are plain `FnOnce(worker)` closures — the
//! executing worker's index lets callers keep worker-local state such as
//! per-worker executors — and all result routing happens through the
//! closures' own captured state.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// Priority lane of a submitted job.
///
/// Interactive work is drained preferentially (see [`BATCH_SHARE`]);
/// batch work fills whatever capacity remains, with an anti-starvation
/// share so heavy interactive traffic cannot park batch jobs forever.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency-sensitive traffic: drained first.
    #[default]
    Interactive,
    /// Throughput traffic: drained when no interactive work is queued,
    /// plus a guaranteed share of dequeues under contention.
    Batch,
}

impl Lane {
    /// Both lanes, interactive first.
    pub const ALL: [Lane; 2] = [Lane::Interactive, Lane::Batch];

    /// Dense index (0 = interactive, 1 = batch) for per-lane arrays.
    pub fn index(self) -> usize {
        match self {
            Lane::Interactive => 0,
            Lane::Batch => 1,
        }
    }

    /// Wire name, as used in the JSONL protocol's `"lane"` field.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Batch => "batch",
        }
    }

    /// Parses a wire name; `None` for anything else.
    pub fn from_name(name: &str) -> Option<Lane> {
        match name {
            "interactive" => Some(Lane::Interactive),
            "batch" => Some(Lane::Batch),
            _ => None,
        }
    }
}

/// Every `BATCH_SHARE`'th dequeue prefers the batch lane, so batch work
/// keeps a guaranteed 1/`BATCH_SHARE` share of worker attention under
/// sustained interactive load.
const BATCH_SHARE: u64 = 4;

/// Sentinel for "no dequeue recorded yet" in the busy-window accounting.
const NEVER: u64 = u64::MAX;

struct Gate {
    pending: usize,
    shutdown: bool,
}

struct Shared {
    /// `lanes[lane][worker]` — one deque per worker per lane.
    lanes: [Vec<Mutex<VecDeque<Job>>>; 2],
    gate: Mutex<Gate>,
    wake: Condvar,
    started: Instant,
    busy_nanos: AtomicU64,
    executed: AtomicU64,
    steals: AtomicU64,
    /// Total dequeues, for the batch anti-starvation rotation.
    dequeues: AtomicU64,
    /// Jobs currently executing.
    running: AtomicUsize,
    /// Nanos (since `started`) of the first job dequeue; [`NEVER`] until
    /// a job runs.
    first_dequeue_nanos: AtomicU64,
    /// Nanos (since `started`) of the most recent job settle.
    last_settle_nanos: AtomicU64,
}

impl Shared {
    /// Pops a job: preferred lane first (own deque front, then steal from
    /// the back of the other deques — oldest work first, minimizing
    /// contention with the owner popping the front), then the other lane.
    fn take_job(&self, me: usize) -> Option<Job> {
        let n = self.dequeues.fetch_add(1, Ordering::Relaxed);
        let order = if n % BATCH_SHARE == BATCH_SHARE - 1 {
            [Lane::Batch, Lane::Interactive]
        } else {
            [Lane::Interactive, Lane::Batch]
        };
        for lane in order {
            let deques = &self.lanes[lane.index()];
            if let Some(job) = deques[me].lock().unwrap().pop_front() {
                return Some(job);
            }
            for offset in 1..deques.len() {
                let victim = (me + offset) % deques.len();
                if let Some(job) = deques[victim].lock().unwrap().pop_back() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
            }
        }
        None
    }
}

/// A fixed-size lane-aware work-stealing thread pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next: AtomicUsize,
}

impl WorkerPool {
    /// Starts `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mk_deques = || (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let shared = Arc::new(Shared {
            lanes: [mk_deques(), mk_deques()],
            gate: Mutex::new(Gate {
                pending: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            started: Instant::now(),
            busy_nanos: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            dequeues: AtomicU64::new(0),
            running: AtomicUsize::new(0),
            first_dequeue_nanos: AtomicU64::new(NEVER),
            last_settle_nanos: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn svc worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues an interactive-lane job (see [`WorkerPool::spawn_in`]).
    pub fn spawn<F: FnOnce(usize) + Send + 'static>(&self, job: F) {
        self.spawn_in(Lane::Interactive, job);
    }

    /// Enqueues a job on the next deque of `lane` (round-robin) and wakes
    /// a worker. The job receives the index of the worker that executes
    /// it (which, with stealing, need not be the deque it was enqueued
    /// on).
    pub fn spawn_in<F: FnOnce(usize) + Send + 'static>(&self, lane: Lane, job: F) {
        let deques = &self.shared.lanes[lane.index()];
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % deques.len();
        deques[slot].lock().unwrap().push_back(Box::new(job));
        let mut gate = self.shared.gate.lock().unwrap();
        gate.pending += 1;
        drop(gate);
        self.shared.wake.notify_one();
    }

    /// Jobs executed so far.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Cross-deque steals so far.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Busy time and active-window accounting: total thread-time spent
    /// executing jobs, and the wall span from the first job dequeue to
    /// the last settle (extended to now while work is pending or
    /// running). Both are zero before any job ran.
    pub fn busy_window(&self) -> (Duration, Duration) {
        let busy = Duration::from_nanos(self.shared.busy_nanos.load(Ordering::Relaxed));
        let first = self.shared.first_dequeue_nanos.load(Ordering::Relaxed);
        if first == NEVER {
            return (busy, Duration::ZERO);
        }
        let active = self.shared.running.load(Ordering::Relaxed) > 0 || {
            let gate = self.shared.gate.lock().unwrap();
            gate.pending > 0
        };
        let end = if active {
            self.shared.started.elapsed().as_nanos() as u64
        } else {
            self.shared.last_settle_nanos.load(Ordering::Relaxed)
        };
        (busy, Duration::from_nanos(end.saturating_sub(first)))
    }

    /// Fraction of the pool's thread-time spent executing jobs across the
    /// pool's *active window* — first dequeue to last settle — rather
    /// than whole-process wall clock (0.0–1.0; 0.0 before any job ran).
    pub fn utilization(&self) -> f64 {
        let (busy, window) = self.busy_window();
        let denom = window.as_secs_f64() * self.handles.len() as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        (busy.as_secs_f64() / denom).min(1.0)
    }
}

impl Drop for WorkerPool {
    /// Drains remaining jobs, then stops and joins every worker.
    fn drop(&mut self) {
        {
            let mut gate = self.shared.gate.lock().unwrap();
            gate.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        match shared.take_job(me) {
            Some(job) => {
                {
                    let mut gate = shared.gate.lock().unwrap();
                    gate.pending -= 1;
                }
                shared.running.fetch_add(1, Ordering::Relaxed);
                let t = Instant::now();
                let since_start = t.duration_since(shared.started).as_nanos() as u64;
                let _ = shared.first_dequeue_nanos.compare_exchange(
                    NEVER,
                    since_start,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                job(me);
                shared
                    .busy_nanos
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                shared.last_settle_nanos.fetch_max(
                    shared.started.elapsed().as_nanos() as u64,
                    Ordering::Relaxed,
                );
                shared.running.fetch_sub(1, Ordering::Relaxed);
                shared.executed.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                let gate = shared.gate.lock().unwrap();
                // A job may have been enqueued between the failed scan and
                // taking the lock; only sleep while nothing is pending.
                if gate.pending == 0 {
                    if gate.shutdown {
                        return;
                    }
                    let _unused = shared.wake.wait(gate).unwrap();
                } else {
                    // Pending but another worker holds it mid-steal: back
                    // off briefly instead of spinning on the deque locks.
                    drop(gate);
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    #[test]
    fn executes_every_job() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(Counter::new(0));
        for i in 0..100u64 {
            let counter = Arc::clone(&counter);
            let lane = if i % 3 == 0 {
                Lane::Batch
            } else {
                Lane::Interactive
            };
            pool.spawn_in(lane, move |_w| {
                counter.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        drop(pool); // drains and joins
        assert_eq!(counter.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn jobs_spawned_from_jobs_complete() {
        let pool = Arc::new(WorkerPool::new(2));
        let counter = Arc::new(Counter::new(0));
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        for _ in 0..8 {
            let pool2 = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            let done = done_tx.clone();
            pool.spawn(move |_w| {
                let counter2 = Arc::clone(&counter);
                let done2 = done.clone();
                pool2.spawn(move |_w| {
                    counter2.fetch_add(1, Ordering::Relaxed);
                    done2.send(()).unwrap();
                });
            });
        }
        for _ in 0..8 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        // Let in-flight closures (each holding a pool Arc) finish dropping
        // so the final Arc — and thus the joining Drop — runs here, not on
        // a worker thread.
        while Arc::strong_count(&pool) > 1 {
            std::thread::yield_now();
        }
    }

    #[test]
    fn stats_track_execution() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..16 {
            let tx = tx.clone();
            pool.spawn(move |_w| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                tx.send(()).unwrap();
            });
        }
        for _ in 0..16 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        // The send happens inside the job; the executed counter bumps just
        // after it returns, so give the last worker a moment to get there.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while pool.executed() < 16 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.executed(), 16);
        assert!(pool.utilization() > 0.0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.spawn(move |w| tx.send(w).unwrap());
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(0));
    }

    #[test]
    fn utilization_uses_active_window_not_process_wall() {
        let pool = WorkerPool::new(1);
        // Let process wall clock accumulate while the pool is idle: the
        // old accounting would dilute utilization by this idle time.
        std::thread::sleep(Duration::from_millis(30));
        let (tx, rx) = std::sync::mpsc::channel();
        pool.spawn(move |_w| {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(10)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.executed() < 1 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let (busy, window) = pool.busy_window();
        assert!(busy >= Duration::from_millis(15), "busy: {busy:?}");
        assert!(
            window < Duration::from_millis(200),
            "window must exclude pre-first-job idle: {window:?}"
        );
        assert!(
            pool.utilization() > 0.5,
            "one 20ms job in a ~20ms window: {:.3}",
            pool.utilization()
        );
    }

    #[test]
    fn busy_window_zero_before_any_job() {
        let pool = WorkerPool::new(2);
        std::thread::sleep(Duration::from_millis(5));
        let (busy, window) = pool.busy_window();
        assert_eq!(busy, Duration::ZERO);
        assert_eq!(window, Duration::ZERO);
        assert_eq!(pool.utilization(), 0.0);
    }

    #[test]
    fn batch_lane_shares_dequeues_under_interactive_flood() {
        // One worker, blocked while we enqueue: a batch job plus many
        // interactive jobs. The anti-starvation rotation must run the
        // batch job well before the interactive backlog is exhausted.
        let pool = WorkerPool::new(1);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        pool.spawn(move |_w| {
            let _ = gate_rx.recv(); // hold the worker
        });
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..12u64 {
            let order = Arc::clone(&order);
            pool.spawn_in(Lane::Interactive, move |_w| {
                order.lock().unwrap().push(format!("i{i}"));
            });
        }
        let order2 = Arc::clone(&order);
        pool.spawn_in(Lane::Batch, move |_w| {
            order2.lock().unwrap().push("batch".into());
        });
        gate_tx.send(()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.executed() < 14 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let order = order.lock().unwrap().clone();
        let pos = order
            .iter()
            .position(|s| s == "batch")
            .expect("batch job ran");
        assert!(
            pos < order.len() - 1,
            "batch job must not be last behind the whole interactive flood: {order:?}"
        );
    }
}

//! A work-stealing worker pool on std primitives.
//!
//! Each worker owns a deque; submission round-robins jobs across the
//! deques, a worker pops its own deque from the front and steals from the
//! back of others when idle. A single gate (mutex + condvar over the
//! pending-job count) puts truly idle workers to sleep without a lost
//! wakeup: a worker only waits while the pending count is zero.
//!
//! The pool exists to multiplex many *small* sub-jobs (sharded CEC cones)
//! over a few OS threads; jobs are plain `FnOnce(worker)` closures — the
//! executing worker's index lets callers keep worker-local state such as
//! per-worker executors — and all result routing happens through the
//! closures' own captured state.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce(usize) + Send + 'static>;

struct Gate {
    pending: usize,
    shutdown: bool,
}

struct Shared {
    deques: Vec<Mutex<VecDeque<Job>>>,
    gate: Mutex<Gate>,
    wake: Condvar,
    busy_nanos: AtomicU64,
    executed: AtomicU64,
    steals: AtomicU64,
}

impl Shared {
    /// Pops a job: own deque front first, then steal from the back of the
    /// other deques (oldest work first, minimizing contention with the
    /// owner popping the front).
    fn take_job(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.deques[me].lock().unwrap().pop_front() {
            return Some(job);
        }
        for offset in 1..self.deques.len() {
            let victim = (me + offset) % self.deques.len();
            if let Some(job) = self.deques[victim].lock().unwrap().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }
}

/// A fixed-size work-stealing thread pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next: AtomicUsize,
    started: Instant,
}

impl WorkerPool {
    /// Starts `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(Gate {
                pending: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            busy_nanos: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn svc worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            next: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a job on the next deque (round-robin) and wakes a worker.
    /// The job receives the index of the worker that executes it (which,
    /// with stealing, need not be the deque it was enqueued on).
    pub fn spawn<F: FnOnce(usize) + Send + 'static>(&self, job: F) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.deques.len();
        self.shared.deques[slot]
            .lock()
            .unwrap()
            .push_back(Box::new(job));
        let mut gate = self.shared.gate.lock().unwrap();
        gate.pending += 1;
        drop(gate);
        self.shared.wake.notify_one();
    }

    /// Jobs executed so far.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Cross-deque steals so far.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Fraction of the pool's thread-time spent executing jobs since the
    /// pool started (0.0–1.0).
    pub fn utilization(&self) -> f64 {
        let wall = self.started.elapsed().as_secs_f64() * self.handles.len() as f64;
        if wall <= 0.0 {
            return 0.0;
        }
        let busy = self.shared.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        (busy / wall).min(1.0)
    }
}

impl Drop for WorkerPool {
    /// Drains remaining jobs, then stops and joins every worker.
    fn drop(&mut self) {
        {
            let mut gate = self.shared.gate.lock().unwrap();
            gate.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        match shared.take_job(me) {
            Some(job) => {
                {
                    let mut gate = shared.gate.lock().unwrap();
                    gate.pending -= 1;
                }
                let t = Instant::now();
                job(me);
                shared
                    .busy_nanos
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                shared.executed.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                let gate = shared.gate.lock().unwrap();
                // A job may have been enqueued between the failed scan and
                // taking the lock; only sleep while nothing is pending.
                if gate.pending == 0 {
                    if gate.shutdown {
                        return;
                    }
                    let _unused = shared.wake.wait(gate).unwrap();
                } else {
                    // Pending but another worker holds it mid-steal: back
                    // off briefly instead of spinning on the deque locks.
                    drop(gate);
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    #[test]
    fn executes_every_job() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(Counter::new(0));
        for i in 0..100u64 {
            let counter = Arc::clone(&counter);
            pool.spawn(move |_w| {
                counter.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        drop(pool); // drains and joins
        assert_eq!(counter.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn jobs_spawned_from_jobs_complete() {
        let pool = Arc::new(WorkerPool::new(2));
        let counter = Arc::new(Counter::new(0));
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        for _ in 0..8 {
            let pool2 = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            let done = done_tx.clone();
            pool.spawn(move |_w| {
                let counter2 = Arc::clone(&counter);
                let done2 = done.clone();
                pool2.spawn(move |_w| {
                    counter2.fetch_add(1, Ordering::Relaxed);
                    done2.send(()).unwrap();
                });
            });
        }
        for _ in 0..8 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        // Let in-flight closures (each holding a pool Arc) finish dropping
        // so the final Arc — and thus the joining Drop — runs here, not on
        // a worker thread.
        while Arc::strong_count(&pool) > 1 {
            std::thread::yield_now();
        }
    }

    #[test]
    fn stats_track_execution() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..16 {
            let tx = tx.clone();
            pool.spawn(move |_w| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                tx.send(()).unwrap();
            });
        }
        for _ in 0..16 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        // The send happens inside the job; the executed counter bumps just
        // after it returns, so give the last worker a moment to get there.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while pool.executed() < 16 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.executed(), 16);
        assert!(pool.utilization() > 0.0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.spawn(move |w| tx.send(w).unwrap());
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(0));
    }
}

//! NPN-canonical cone signatures — the keys of the semantic cache tier.
//!
//! A structural key only collapses *identical* cones. Repeat-heavy
//! service traffic is full of cones that are functionally the same logic
//! dressed in different structure (resynthesized blocks, permuted or
//! negated inputs, inverted outputs). For small cones we can afford an
//! exact semantic identity: compute the cone's truth table
//! ([`cone_truth_table`]), canonicalize it under NPN equivalence
//! ([`npn_canonical`]), and key the verdict by the canonical word vector.
//! The stored [`NpnTransform`] of each probe lifts canonical-space
//! counterexamples back onto the probing cone's own inputs.
//!
//! Soundness does not rest on trusting the cached entry: the canonical
//! table is recomputed from the candidate cone at probe time, key
//! equality is full word-vector equality (not a 64-bit digest), and a
//! served counterexample is re-evaluated on the candidate cone before it
//! leaves the cache. A corrupt entry can cost a miss, never a verdict.

use parsweep_aig::Aig;
use parsweep_sim::{cone_truth_table, lift_index, npn_canonical, Cex, NpnTransform, TruthTable};

/// Default bound on cone inputs for semantic keying. Canonicalization is
/// exhaustive over `k! * 2^k * 2` transforms, so each extra variable
/// multiplies the one-off keying cost; 5 inputs (7680 transforms) keeps
/// it well under the cost of proving anything non-trivial, while 6
/// (92160) is usually worth it only for repeat-dominated traffic.
pub const DEFAULT_SEMANTIC_MAX_VARS: usize = 5;

/// The semantic identity of a cone: its NPN-canonical truth table as an
/// exact word vector. Two cones share a `SemanticKey` iff their functions
/// are NPN-equivalent — full-width equality, no digest collisions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SemanticKey {
    num_vars: u8,
    words: Vec<u64>,
}

impl SemanticKey {
    /// The key of a canonical (masked) truth table.
    pub fn of(canon: &TruthTable) -> Self {
        let canon = canon.masked();
        SemanticKey {
            num_vars: canon.num_vars() as u8,
            words: canon.words().to_vec(),
        }
    }

    /// Number of variables of the keyed function.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }
}

/// A cone's semantic signature: the canonical key plus everything needed
/// to translate between the cone's own input space and canonical space.
#[derive(Clone, Debug)]
pub struct SemanticSig {
    /// Canonical identity (the cache key).
    pub key: SemanticKey,
    /// The canonical truth table itself, recomputed from the cone.
    pub canon: TruthTable,
    /// The transform mapping the cone's table onto `canon`.
    pub transform: NpnTransform,
}

/// Computes a cone's semantic signature, or `None` when the cone does
/// not qualify (more than one PO, or more than `max_vars` PIs).
pub fn semantic_signature(cone: &Aig, max_vars: usize) -> Option<SemanticSig> {
    let tt = cone_truth_table(cone, max_vars)?;
    let (canon, transform) = npn_canonical(&tt);
    Some(SemanticSig {
        key: SemanticKey::of(&canon),
        canon,
        transform,
    })
}

/// Packs a cone counterexample into its assignment index (bit `i` of the
/// index is PI `i`'s value).
pub fn cex_to_index(cex: &Cex) -> usize {
    cex.inputs()
        .iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | ((b as usize) << i))
}

/// Pushes a cone-space assignment index into canonical space through the
/// signature's transform (the inverse of [`index_to_cex`]'s lifting).
pub fn push_index_of(sig: &SemanticSig, src_index: usize) -> usize {
    parsweep_sim::push_index(&sig.transform, sig.canon.num_vars(), src_index)
}

/// Lifts a canonical-space assignment index back through a signature's
/// transform into a counterexample over the cone's own PIs.
pub fn index_to_cex(sig: &SemanticSig, canon_index: usize) -> Cex {
    let k = sig.canon.num_vars();
    let src = lift_index(&sig.transform, k, canon_index);
    Cex::new((0..k).map(|i| src >> i & 1 == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cone(build: impl FnOnce(&mut Aig, &[parsweep_aig::Lit]) -> parsweep_aig::Lit) -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let f = build(&mut aig, &xs);
        aig.add_po(f);
        aig
    }

    #[test]
    fn npn_variants_share_a_key() {
        // f = (a & b) | c  vs  g = !(!x2 | !x1) | x0 with permuted inputs:
        // same function family up to NPN, very different structure.
        let f = cone(|a, xs| {
            let t = a.and(xs[0], xs[1]);
            a.or(t, xs[2])
        });
        let g = cone(|a, xs| {
            let t = a.or(!xs[2], !xs[1]);
            a.or(!t, xs[0])
        });
        let sf = semantic_signature(&f, 6).unwrap();
        let sg = semantic_signature(&g, 6).unwrap();
        assert_eq!(sf.key, sg.key);
        assert!(!f.same_structure(&g));
    }

    #[test]
    fn lifted_index_round_trips_to_a_firing_cex() {
        let f = cone(|a, xs| {
            let t = a.xor(xs[0], xs[1]);
            a.and(t, !xs[2])
        });
        let sig = semantic_signature(&f, 6).unwrap();
        for i in 0..sig.canon.num_bits() {
            let cex = index_to_cex(&sig, i);
            // canon(i) != output_neg  <=>  the cone fires on the lifted cex.
            assert_eq!(
                cex.fires(&f),
                sig.canon.value(i) != sig.transform.output_neg,
                "canonical index {i}"
            );
        }
    }

    #[test]
    fn oversized_cones_do_not_qualify() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(6);
        let f = aig.and_all(xs.iter().copied());
        aig.add_po(f);
        assert!(semantic_signature(&aig, 5).is_none());
        assert!(semantic_signature(&aig, 6).is_some());
    }
}

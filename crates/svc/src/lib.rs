//! # parsweep-svc — a multi-client CEC job service
//!
//! The paper frames simulation-based sweeping as a *throughput* engine:
//! many independent checks saturating one parallel executor. This crate
//! turns that framing into a service:
//!
//! * **Sharding** ([`shard_miter`]): each submitted miter splits along
//!   its output cones into independently provable sub-jobs (a miter is
//!   equivalent iff every PO cone is constant zero), scheduled on a
//!   work-stealing [`pool`](crate::pool) that drives the
//!   `parsweep-core` engine, one executor per worker.
//! * **Cancellation & deadlines**: every job carries a
//!   [`CancelToken`](parsweep_par::CancelToken) polled at the engine's
//!   phase boundaries and the SAT fallback's budget checks, so a
//!   deadline produces a prompt *partial* verdict — `Undecided`, never a
//!   wrong answer.
//! * **Result cache** ([`ResultCache`]): cones are keyed by canonical
//!   structural hash (verified exactly), so repeated traffic — reruns,
//!   `double`d benchmarks, shared blocks — settles without re-proving.
//! * **Front-end**: the `svc` binary speaks flat JSON lines on
//!   stdin/stdout ([`jsonl`]); [`SvcStats`] reports queue wait, shard
//!   counts, cache hit rate and worker utilization.
//!
//! ```
//! use parsweep_aig::{miter, Aig};
//! use parsweep_sat::Verdict;
//! use parsweep_svc::{CecService, SvcConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Aig::new();
//! let xs = a.add_inputs(4);
//! let f = a.and(xs[0], xs[1]);
//! let g = a.xor(xs[2], xs[3]);
//! a.add_po(f);
//! a.add_po(g);
//! let m = miter(&a, &a.clone())?;
//! let svc = CecService::new(SvcConfig::default());
//! let job = svc.submit(m);
//! assert_eq!(svc.wait(job).unwrap().verdict, Verdict::Equivalent);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cache;
pub mod frontend;
pub mod jsonl;
pub mod persist;
mod pool;
pub mod semantic;
mod service;
mod shard;
pub mod shutdown;

pub use cache::{
    PersistSummary, ResultCache, RoutingInfo, CACHE_ENTRY_VERSION, DEFAULT_CACHE_CAPACITY,
};
pub use pool::{Lane, WorkerPool};
pub use semantic::{semantic_signature, SemanticKey, SemanticSig, DEFAULT_SEMANTIC_MAX_VARS};
pub use service::{
    CecService, ClientStats, JobId, JobResult, JobStats, SubmitOpts, SvcConfig, SvcStats,
};
pub use shard::{shard_miter, Shard, ShardPolicy};

//! JSON-lines front-end for the CEC job service.
//!
//! Reads one flat JSON request per stdin line, writes one flat JSON event
//! per stdout line. Requests:
//!
//! * `{"op":"submit","miter":"m.aag"}` — check one AIGER miter file;
//! * `{"op":"submit","left":"a.aag","right":"b.aag"}` — miter two files;
//! * `{"op":"submit","demo":"adder","width":8}` — built-in demo miter
//!   (two structurally different `width`-bit adders), handy offline;
//! * any submit may add `"deadline_ms":N` and `"corrupt":true` (demo
//!   only: flips a PO so the miter is disproved);
//! * `{"op":"drain"}` — settle all outstanding jobs, emit their results;
//! * `{"op":"stats"}` — emit the service counters;
//! * `{"op":"metrics"}` — emit a Prometheus-style text snapshot of the
//!   service counters and latency histograms (as the `text` field of the
//!   response event).
//!
//! EOF performs a final drain (with stats) and exits. Flags:
//! `--workers N`, `--exec-threads N`, `--deadline-ms N` (default for
//! submits without one), `--sat` (SAT fallback on undecided shards),
//! `--prover sequential|adaptive` (how undecided shards are finished:
//! the fixed engine sequence, or the service-wide adaptive dispatcher
//! with per-class engine racing; sequential is the default),
//! `--connected` (shard by connected components instead of per output),
//! `--cache-capacity N` (result-cache LRU bound, 0 disables caching),
//! `--trace PATH` (write a Chrome-trace JSON of the whole run at exit;
//! also honoured from the `PARSWEEP_TRACE` environment variable; needs a
//! build with the `trace` feature to record anything).

use std::io::{BufRead, Write};
use std::time::Duration;

use parsweep_aig::{miter, read_aiger_file, Aig, Lit};
use parsweep_sat::{ProverMode, Verdict};
use parsweep_svc::jsonl::{emit_object, get, parse_object, JsonValue};
use parsweep_svc::{CecService, JobResult, ShardPolicy, SvcConfig};
use parsweep_trace as trace;

fn main() {
    let mut cfg = SvcConfig::default();
    let mut trace_path = trace::env_trace_path();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs an argument")))
        };
        let mut num = |name: &str| -> usize {
            next(name)
                .parse()
                .unwrap_or_else(|_| die(&format!("{name} needs a numeric argument")))
        };
        match arg.as_str() {
            "--workers" => cfg.workers = num("--workers").max(1),
            "--exec-threads" => cfg.exec_threads = num("--exec-threads").max(1),
            "--deadline-ms" => {
                cfg.default_deadline = Some(Duration::from_millis(num("--deadline-ms") as u64));
            }
            "--sat" => cfg.sat_fallback = true,
            "--prover" => {
                let name = next("--prover");
                cfg.prover = ProverMode::from_name(&name).unwrap_or_else(|| {
                    die(&format!(
                        "--prover needs 'sequential' or 'adaptive', got '{name}'"
                    ))
                });
            }
            "--connected" => cfg.shard_policy = ShardPolicy::Connected,
            "--cache-capacity" => cfg.cache_capacity = num("--cache-capacity"),
            "--trace" => trace_path = Some(next("--trace")),
            "--help" | "-h" => {
                println!(
                    "usage: svc [--workers N] [--exec-threads N] [--deadline-ms N] [--sat] \
                     [--prover sequential|adaptive] [--connected] [--cache-capacity N] \
                     [--trace PATH]"
                );
                println!("reads JSON-lines requests on stdin; see module docs");
                return;
            }
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    if trace_path.is_some() {
        if trace::compiled() {
            trace::enable();
        } else {
            eprintln!(
                "svc: --trace requested but this build lacks the 'trace' feature; \
                 no spans will be recorded"
            );
        }
    }

    let svc = CecService::new(cfg);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match handle_request(&svc, &line) {
            Ok(events) => {
                for event in events {
                    let _ = writeln!(out, "{event}");
                }
            }
            Err(msg) => {
                let _ = writeln!(
                    out,
                    "{}",
                    emit_object(&[
                        ("event", JsonValue::Str("error".into())),
                        ("message", JsonValue::Str(msg)),
                    ])
                );
            }
        }
        let _ = out.flush();
    }

    // EOF: settle everything still in flight.
    for result in svc.drain() {
        let _ = writeln!(out, "{}", result_event(&result));
    }
    let _ = writeln!(out, "{}", stats_event(&svc));
    let _ = out.flush();

    if let Some(path) = trace_path.filter(|_| trace::compiled()) {
        trace::disable();
        match trace::write_chrome_trace(&path) {
            Ok(()) => eprintln!("svc: wrote Chrome trace to {path}"),
            Err(e) => eprintln!("svc: failed to write trace {path}: {e}"),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("svc: {msg}");
    std::process::exit(2);
}

fn handle_request(svc: &CecService, line: &str) -> Result<Vec<String>, String> {
    let fields = parse_object(line).map_err(|e| e.to_string())?;
    let op = get(&fields, "op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing 'op'".to_string())?;
    match op {
        "submit" => {
            let m = load_miter(&fields)?;
            let deadline = get(&fields, "deadline_ms")
                .and_then(JsonValue::as_f64)
                .map(|ms| Duration::from_millis(ms.max(0.0) as u64));
            let id = match deadline {
                Some(d) => svc.submit_with_deadline(m, Some(d)),
                None => svc.submit(m),
            };
            Ok(vec![emit_object(&[
                ("event", JsonValue::Str("submitted".into())),
                ("job", JsonValue::Num(id.0 as f64)),
            ])])
        }
        "drain" => {
            let mut events: Vec<String> = svc.drain().iter().map(result_event).collect();
            events.push(stats_event(svc));
            Ok(events)
        }
        "stats" => Ok(vec![stats_event(svc)]),
        "metrics" => Ok(vec![emit_object(&[
            ("event", JsonValue::Str("metrics".into())),
            ("text", JsonValue::Str(svc.metrics_text())),
        ])]),
        other => Err(format!("unknown op '{other}'")),
    }
}

fn load_miter(fields: &[(String, JsonValue)]) -> Result<Aig, String> {
    if let Some(path) = get(fields, "miter").and_then(JsonValue::as_str) {
        return read_aiger_file(path).map_err(|e| format!("{path}: {e:?}"));
    }
    if let (Some(left), Some(right)) = (
        get(fields, "left").and_then(JsonValue::as_str),
        get(fields, "right").and_then(JsonValue::as_str),
    ) {
        let a = read_aiger_file(left).map_err(|e| format!("{left}: {e:?}"))?;
        let b = read_aiger_file(right).map_err(|e| format!("{right}: {e:?}"))?;
        return miter(&a, &b).map_err(|e| format!("miter: {e:?}"));
    }
    if let Some(demo) = get(fields, "demo").and_then(JsonValue::as_str) {
        let width = get(fields, "width")
            .and_then(JsonValue::as_f64)
            .map(|w| w as usize)
            .unwrap_or(8)
            .clamp(1, 256);
        let corrupt = get(fields, "corrupt")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        return demo_miter(demo, width, corrupt);
    }
    Err("submit needs 'miter', 'left'+'right', or 'demo'".into())
}

/// Two structurally different `width`-bit adders, mitered; `corrupt`
/// flips one PO so the miter is satisfiable.
fn demo_miter(kind: &str, width: usize, corrupt: bool) -> Result<Aig, String> {
    if kind != "adder" {
        return Err(format!("unknown demo '{kind}' (try \"adder\")"));
    }
    let a = demo_adder(width, true);
    let mut b = demo_adder(width, false);
    if corrupt {
        let po0 = b.po(0);
        b.set_po(0, !po0);
    }
    miter(&a, &b).map_err(|e| format!("miter: {e:?}"))
}

fn demo_adder(width: usize, ripple: bool) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs(width);
    let b = aig.add_inputs(width);
    let mut carry = Lit::FALSE;
    for i in 0..width {
        let axb = aig.xor(a[i], b[i]);
        let sum = aig.xor(axb, carry);
        carry = if ripple {
            let t = aig.and(a[i], b[i]);
            let u = aig.and(axb, carry);
            aig.or(t, u)
        } else {
            aig.maj3(a[i], b[i], carry)
        };
        aig.add_po(sum);
    }
    aig.add_po(carry);
    aig
}

fn result_event(result: &JobResult) -> String {
    let verdict = match &result.verdict {
        Verdict::Equivalent => "equivalent",
        Verdict::NotEquivalent(_) => "not-equivalent",
        Verdict::Undecided => "undecided",
    };
    let mut fields = vec![
        ("event", JsonValue::Str("result".into())),
        ("job", JsonValue::Num(result.id.0 as f64)),
        ("verdict", JsonValue::Str(verdict.into())),
        ("shards", JsonValue::Num(result.stats.shards as f64)),
        ("cache_hits", JsonValue::Num(result.stats.cache_hits as f64)),
        (
            "cache_misses",
            JsonValue::Num(result.stats.cache_misses as f64),
        ),
        (
            "queue_wait_ms",
            JsonValue::Num(result.stats.queue_wait.as_secs_f64() * 1000.0),
        ),
        (
            "total_ms",
            JsonValue::Num(result.stats.total.as_secs_f64() * 1000.0),
        ),
        ("cancelled", JsonValue::Bool(result.stats.cancelled)),
    ];
    if let Verdict::NotEquivalent(cex) = &result.verdict {
        let bits: String = cex
            .inputs()
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        fields.push(("cex", JsonValue::Str(bits)));
    }
    emit_object(&fields)
}

fn stats_event(svc: &CecService) -> String {
    let s = svc.stats();
    emit_object(&[
        ("event", JsonValue::Str("stats".into())),
        ("jobs_submitted", JsonValue::Num(s.jobs_submitted as f64)),
        ("jobs_completed", JsonValue::Num(s.jobs_completed as f64)),
        ("shards", JsonValue::Num(s.shards_total as f64)),
        ("cache_hits", JsonValue::Num(s.cache_hits as f64)),
        ("cache_misses", JsonValue::Num(s.cache_misses as f64)),
        ("cache_hit_rate", JsonValue::Num(s.cache_hit_rate())),
        ("cache_evictions", JsonValue::Num(s.cache_evictions as f64)),
        ("cancellations", JsonValue::Num(s.cancellations as f64)),
        ("worker_utilization", JsonValue::Num(s.worker_utilization)),
    ])
}

//! JSON-lines front-end for the CEC job service.
//!
//! Reads one flat JSON request per stdin line, writes one flat JSON event
//! per stdout line. Requests:
//!
//! * `{"op":"submit","miter":"m.aag"}` — check one AIGER miter file;
//! * `{"op":"submit","left":"a.aag","right":"b.aag"}` — miter two files;
//! * `{"op":"submit","demo":"adder","width":8}` — built-in demo miter
//!   (two structurally different `width`-bit adders), handy offline;
//! * any submit may add `"deadline_ms":N`, `"lane":"interactive"|"batch"`
//!   (scheduling priority), `"id":N` (echoed on the response) and
//!   `"corrupt":true` (demo only: flips a PO so the miter is disproved);
//! * `{"op":"drain"}` — settle all outstanding jobs, emit their results;
//! * `{"op":"stats"}` — emit the service counters;
//! * `{"op":"metrics"}` — emit a Prometheus-style text snapshot of the
//!   service counters and latency histograms (as the `text` field of the
//!   response event).
//!
//! EOF, SIGINT, SIGTERM, and a broken stdout pipe all take the same
//! graceful exit: stop reading requests, drain every job still in
//! flight, emit their results and a final stats event. This is the thin
//! single-client wrapper over the shared front-end core
//! ([`parsweep_svc::frontend`]); the multi-client TCP server
//! (`parsweep-net`) layers admission control and fairness over the same
//! core. Flags: `--workers N`, `--exec-threads N`, `--deadline-ms N`
//! (default for submits without one), `--sat` (SAT fallback on undecided
//! shards), `--prover sequential|adaptive` (how undecided shards are
//! finished), `--connected` (shard by connected components instead of
//! per output), `--fuse-threshold N` (batch cone shards below N nodes
//! into fused dispatches; 0 disables), `--cache-capacity N`
//! (result-cache LRU bound, 0 disables caching), `--cache-persist PATH`
//! (append settled semantic verdicts to PATH and load them back on
//! start, so a restarted service keeps its semantic cache corpus —
//! missing files start fresh, corrupt lines are skipped),
//! `--semantic-vars N` (largest cone input count the semantic
//! NPN-canonical cache tier keys, at most 6; 0 disables the tier),
//! `--trace PATH` (write a
//! Chrome-trace JSON of the whole run at exit; also honoured from the
//! `PARSWEEP_TRACE` environment variable; needs a build with the `trace`
//! feature to record anything).

use std::io::{BufRead, Write};
use std::time::Duration;

use parsweep_sat::ProverMode;
use parsweep_svc::frontend::{handle_request, result_fields, stats_fields, MiterCache};
use parsweep_svc::jsonl::{emit_object, JsonValue};
use parsweep_svc::{shutdown, CecService, ShardPolicy, SvcConfig};
use parsweep_trace as trace;

fn main() {
    let mut cfg = SvcConfig::default();
    let mut trace_path = trace::env_trace_path();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs an argument")))
        };
        let mut num = |name: &str| -> usize {
            next(name)
                .parse()
                .unwrap_or_else(|_| die(&format!("{name} needs a numeric argument")))
        };
        match arg.as_str() {
            "--workers" => cfg.workers = num("--workers").max(1),
            "--exec-threads" => cfg.exec_threads = num("--exec-threads").max(1),
            "--deadline-ms" => {
                cfg.default_deadline = Some(Duration::from_millis(num("--deadline-ms") as u64));
            }
            "--sat" => cfg.sat_fallback = true,
            "--prover" => {
                let name = next("--prover");
                cfg.prover = ProverMode::from_name(&name).unwrap_or_else(|| {
                    die(&format!(
                        "--prover needs 'sequential' or 'adaptive', got '{name}'"
                    ))
                });
            }
            "--connected" => cfg.shard_policy = ShardPolicy::Connected,
            "--fuse-threshold" => cfg.fuse_threshold = num("--fuse-threshold"),
            "--cache-capacity" => cfg.cache_capacity = num("--cache-capacity"),
            "--cache-persist" => cfg.cache_persist = Some(next("--cache-persist").into()),
            "--semantic-vars" => cfg.semantic_max_vars = num("--semantic-vars"),
            "--trace" => trace_path = Some(next("--trace")),
            "--help" | "-h" => {
                println!(
                    "usage: svc [--workers N] [--exec-threads N] [--deadline-ms N] [--sat] \
                     [--prover sequential|adaptive] [--connected] [--fuse-threshold N] \
                     [--cache-capacity N] [--cache-persist PATH] [--semantic-vars N] \
                     [--trace PATH]"
                );
                println!("reads JSON-lines requests on stdin; see module docs");
                return;
            }
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    if trace_path.is_some() {
        if trace::compiled() {
            trace::enable();
        } else {
            eprintln!(
                "svc: --trace requested but this build lacks the 'trace' feature; \
                 no spans will be recorded"
            );
        }
    }

    shutdown::install_signal_handlers();
    let svc = CecService::new(cfg);
    let files = MiterCache::default();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    for line in stdin.lock().lines() {
        if shutdown::requested() {
            break;
        }
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let events = match handle_request(&svc, &files, &line) {
            Ok(events) => events,
            Err(msg) => vec![emit_object(&[
                ("event", JsonValue::Str("error".into())),
                ("message", JsonValue::Str(msg)),
            ])],
        };
        let mut broken = false;
        for event in events {
            // Rust ignores SIGPIPE, so a consumer hanging up surfaces
            // here as a write error: treat it like a shutdown request.
            broken |= writeln!(out, "{event}").is_err();
        }
        broken |= out.flush().is_err();
        if broken {
            shutdown::request();
            break;
        }
    }

    // EOF, signal, or broken pipe: settle everything still in flight and
    // report. Writes may fail if the pipe is gone; draining still runs so
    // in-flight work finishes (and a trace, if any, is complete).
    for result in svc.drain() {
        let _ = writeln!(out, "{}", emit_object(&result_fields(&result)));
    }
    let _ = writeln!(out, "{}", emit_object(&stats_fields(&svc)));
    let _ = out.flush();

    if let Some(path) = trace_path.filter(|_| trace::compiled()) {
        trace::disable();
        match trace::write_chrome_trace(&path) {
            Ok(()) => eprintln!("svc: wrote Chrome trace to {path}"),
            Err(e) => eprintln!("svc: failed to write trace {path}: {e}"),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("svc: {msg}");
    std::process::exit(2);
}

//! Reproduces the paper's **Figure 6**: runtime breakdown of the
//! simulation-based CEC engine into its phase types (P = PO checking,
//! G = global function checking, L = local function checking, other).
//!
//! Usage: `fig6 [tiny|small|medium]`

use parsweep_bench::harness::{suite, Scale};
use parsweep_core::{sim_sweep, EngineConfig};
use parsweep_par::Executor;

fn bar(pct: f64, width: usize) -> String {
    let filled = ((pct / 100.0) * width as f64).round() as usize;
    format!(
        "{}{}",
        "#".repeat(filled.min(width)),
        ".".repeat(width - filled.min(width))
    )
}

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Small);
    let exec = Executor::new();
    println!("# Figure 6 reproduction — engine phase runtime breakdown ({scale:?})");
    println!();
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}   {:<24} {:>9}",
        "Benchmark", "P(%)", "G(%)", "L(%)", "other(%)", "P/G/L profile", "total(s)"
    );
    for case in suite(scale) {
        let r = sim_sweep(&case.miter, &exec, &EngineConfig::scaled());
        let (p, g, l, o) = r.stats.phase_times.percentages();
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>8.1} {:>8.1}   {} {:>9.2}",
            case.name,
            p,
            g,
            l,
            o,
            bar(p + g, 24),
            r.stats.seconds
        );
    }
}

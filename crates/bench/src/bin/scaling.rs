//! Scaling sweep: how the engine and the SAT baseline scale as a
//! benchmark is enlarged by repeated `double` (the paper's motivation for
//! parallel CEC — exhaustive-simulation work grows linearly with copies,
//! while SAT effort can grow much faster).
//!
//! Usage: `scaling [--family multiplier|square|bus] [--max-doublings N] [--budget <s>]`

use std::time::{Duration, Instant};

use parsweep_bench::gen::{gen_bus_ctrl, gen_multiplier, gen_square};
use parsweep_bench::harness::baseline_sat_config;
use parsweep_core::{sim_sweep, EngineConfig};
use parsweep_par::Executor;
use parsweep_sat::{sat_sweep, Verdict};
use parsweep_synth::resyn2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut family = "multiplier".to_string();
    let mut max_doublings = 4usize;
    let mut budget = Duration::from_secs(30);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--family" => family = it.next().expect("--family <name>").clone(),
            "--max-doublings" => {
                max_doublings = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-doublings N")
            }
            "--budget" => {
                budget = Duration::from_secs(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--budget <s>"),
                )
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let base = match family.as_str() {
        "multiplier" => gen_multiplier(8),
        "square" => gen_square(10),
        "bus" => gen_bus_ctrl(8, 8, 0xac97),
        other => panic!("unknown family {other:?}"),
    };
    let optimized = resyn2(&base);
    let exec = Executor::new();

    println!("# Scaling sweep — {family}, doublings 0..={max_doublings}, SAT budget {budget:?}");
    println!(
        "{:<6} {:>10} {:>12} {:>8} {:>12} {:>10}",
        "nxd", "miter ANDs", "engine(s)", "red(%)", "sat(s)", "sat verdict"
    );
    for d in 0..=max_doublings {
        let left = base.double_times(d);
        let right = optimized.double_times(d);
        let m = parsweep_aig::miter(&left, &right).expect("same interface");
        let r = sim_sweep(&m, &exec, &EngineConfig::scaled());

        let t = Instant::now();
        let s = sat_sweep(&m, &exec, &baseline_sat_config(budget));
        let sat_secs = if s.verdict == Verdict::Undecided {
            budget.as_secs_f64()
        } else {
            t.elapsed().as_secs_f64()
        };
        let tag = match s.verdict {
            Verdict::Equivalent => "eq",
            Verdict::NotEquivalent(_) => "NEQ!",
            Verdict::Undecided => "t/o",
        };
        println!(
            "{:<6} {:>10} {:>12.3} {:>8.1} {:>12.3} {:>10}",
            format!("{d}xd"),
            m.num_ands(),
            r.stats.seconds,
            r.stats.reduction_pct(),
            sat_secs,
            tag
        );
    }
}

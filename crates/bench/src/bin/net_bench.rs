//! Saturation benchmark for the TCP front-end: clients-vs-throughput.
//!
//! The traffic models the arrangement the multi-client server exists
//! for: a fleet of clients sweeping the *same* suite of miters — CI
//! shards or engineers all verifying one design revision. Each phase
//! uses a fresh suite of structurally distinct random miters written as
//! AIGER files; every client of the phase submits the whole suite,
//! starting at a round-robin offset so the first client to reach a
//! miter proves it and the rest settle from the shared whole-job memo
//! and miter-file cache. Against that:
//!
//! * **Baseline** — one synchronous client driving the stdin `svc`
//!   binary as a subprocess (the shipped single-client front-end,
//!   shipped defaults) through its own all-unique suite of the same
//!   kind of miters: per job, submit → read the ack → drain → read the
//!   stats event. This is what each client would pay running the suite
//!   alone — per-user svc processes share nothing. Falls back to an
//!   in-process submit+wait loop when the binary is not built.
//! * **Saturation sweep** — an in-process [`NetServer`] with shard
//!   fusing on, driven by 1, 2, 4, … concurrent pipelining clients on
//!   mixed lanes. Each phase records throughput and the worker pool's
//!   busy-window utilization delta.
//!
//! Emits `BENCH_net.json` with the full clients-vs-throughput curve.
//!
//! Usage: `net_bench [tiny|small|medium] [output.json]`

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::Instant;

use parsweep_aig::random::random_aig;
use parsweep_aig::write_aiger_file;
use parsweep_bench::harness::Scale;
use parsweep_net::{AdmissionConfig, NetClient, NetConfig, NetServer};
use parsweep_svc::jsonl::{emit_object, get, parse_object, JsonValue};
use parsweep_svc::{CecService, Lane, SvcConfig};

/// Suite miter shape: `random_aig(COLD_PIS, COLD_ANDS, COLD_POS, seed)`.
/// Sized so one fresh solve costs a few hundred microseconds — real
/// prove/disprove work, large against per-job transport overhead.
const COLD_PIS: usize = 14;
const COLD_ANDS: usize = 1400;
const COLD_POS: usize = 12;
/// Pipelining window per saturation client.
const WINDOW: usize = 8;

/// One phase's suite: structurally distinct random miters on disk,
/// submitted by every client of the phase.
struct Suite {
    files: Vec<PathBuf>,
}

impl Suite {
    /// Writes `count` fresh miters for phase `tag` under `dir`.
    fn generate(dir: &Path, tag: usize, count: usize) -> Suite {
        std::fs::create_dir_all(dir).expect("create suite dir");
        let files = (0..count)
            .map(|n| {
                let seed = 0x5eed_0000 + ((tag as u64) << 20) + n as u64;
                let aig = random_aig(COLD_PIS, COLD_ANDS, COLD_POS, seed);
                let path = dir.join(format!("suite_{tag}_{n}.aig"));
                write_aiger_file(&aig, &path).expect("write suite miter");
                path
            })
            .collect();
        Suite { files }
    }

    fn submit_line(&self, idx: usize, lane: Lane, id: u64) -> String {
        let path = self.files[idx].to_string_lossy().into_owned();
        emit_object(&[
            ("op", JsonValue::Str("submit".into())),
            ("miter", JsonValue::Str(path)),
            ("lane", JsonValue::Str(lane.name().into())),
            ("id", JsonValue::Num(id as f64)),
        ])
    }
}

struct PhaseResult {
    clients: usize,
    jobs: usize,
    wall: f64,
    jobs_per_sec: f64,
    utilization: f64,
    queued: u64,
    rejected: u64,
}

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Tiny);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_net.json".to_string());

    let (client_counts, suite_len, baseline_jobs): (&[usize], usize, usize) = match scale {
        Scale::Tiny => (&[1, 2, 4, 8], 240, 320),
        Scale::Small => (&[1, 2, 4, 8, 16], 320, 480),
        Scale::Medium => (&[1, 2, 4, 8, 16, 32], 480, 640),
        Scale::Large => (&[1, 2, 4, 8, 16, 32, 64], 640, 960),
    };
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());

    let dir = std::env::temp_dir().join(format!("parsweep_net_bench_{}", std::process::id()));
    eprintln!(
        "# net saturation bench ({scale:?}, {workers} workers, \
         {} suites of {suite_len} + baseline {baseline_jobs} miters)",
        client_counts.len(),
    );

    // --- Baseline: synchronous single client over the stdin front-end,
    // sweeping its own all-unique suite.
    let baseline_suite = Suite::generate(&dir, 999, baseline_jobs);
    let (transport, baseline_wall) = run_baseline(&baseline_suite);
    let baseline_jps = baseline_jobs as f64 / baseline_wall;
    eprintln!(
        "baseline ({transport}): {baseline_jobs} jobs in {baseline_wall:.3}s = {baseline_jps:.1} jobs/s"
    );

    // --- Saturation sweep: one server, phases of 1..N pipelining clients
    // all sweeping that phase's shared suite.
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            svc: SvcConfig {
                workers,
                fuse_threshold: 64,
                ..SvcConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 16,
                queue_capacity: 4096,
                per_client_max: 8,
            },
            max_connections: 256,
        },
    )
    .expect("bind bench server");
    let addr = server.local_addr();

    // Transport warmup off the clock (connection setup, first dispatch).
    {
        let mut client = NetClient::connect(addr).expect("warmup connect");
        for corrupt in [false, true] {
            client
                .check_demo(3, Lane::Interactive, corrupt)
                .unwrap()
                .unwrap();
        }
    }

    let mut phases: Vec<PhaseResult> = Vec::new();
    for (phase, &clients) in client_counts.iter().enumerate() {
        let suite = std::sync::Arc::new(Suite::generate(&dir, phase, suite_len));
        let jobs = suite_len * clients;
        let (busy0, window0) = server.svc().busy_window();
        let adm0 = server.admission_stats();
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let suite = std::sync::Arc::clone(&suite);
                std::thread::spawn(move || run_client(addr, &suite, c, clients))
            })
            .collect();
        for h in handles {
            h.join().expect("bench client");
        }
        let wall = start.elapsed().as_secs_f64();
        let (busy1, window1) = server.svc().busy_window();
        let adm1 = server.admission_stats();
        let busy = (busy1 - busy0).as_secs_f64();
        let window = (window1 - window0).as_secs_f64();
        let utilization = if window > 0.0 {
            (busy / (window * workers as f64)).min(1.0)
        } else {
            0.0
        };
        let jobs_per_sec = jobs as f64 / wall;
        eprintln!(
            "clients {clients:>3}: {jobs} jobs in {wall:.3}s = {jobs_per_sec:>8.1} jobs/s \
             ({:.2}x baseline), util {utilization:.3}, queued {}, rejected {}",
            jobs_per_sec / baseline_jps,
            adm1.queued - adm0.queued,
            adm1.rejected - adm0.rejected,
        );
        phases.push(PhaseResult {
            clients,
            jobs,
            wall,
            jobs_per_sec,
            utilization,
            queued: adm1.queued - adm0.queued,
            rejected: adm1.rejected - adm0.rejected,
        });
    }

    server.stop();
    let stats = server.svc().stats();
    let _ = std::fs::remove_dir_all(&dir);

    let peak = phases
        .iter()
        .filter(|p| p.clients >= 4)
        .max_by(|a, b| a.jobs_per_sec.total_cmp(&b.jobs_per_sec))
        .expect("a phase with >=4 clients");
    let speedup = peak.jobs_per_sec / baseline_jps;
    eprintln!(
        "peak: {:.1} jobs/s at {} clients = {speedup:.2}x baseline, util {:.3}",
        peak.jobs_per_sec, peak.clients, peak.utilization
    );
    if speedup < 5.0 {
        eprintln!("net_bench: WARNING peak speedup {speedup:.2}x below the 5x target");
    }
    if peak.utilization < 0.5 {
        eprintln!(
            "net_bench: WARNING utilization {:.3} below the 0.5 target",
            peak.utilization
        );
    }

    let mut phases_json = Vec::new();
    for p in &phases {
        let mut j = String::new();
        let _ = write!(
            j,
            concat!(
                "    {{\"clients\": {}, \"jobs\": {}, \"wall_seconds\": {:.6}, ",
                "\"jobs_per_sec\": {:.3}, \"speedup_vs_baseline\": {:.3}, ",
                "\"worker_utilization\": {:.6}, \"queued\": {}, \"rejected\": {}}}"
            ),
            p.clients,
            p.jobs,
            p.wall,
            p.jobs_per_sec,
            p.jobs_per_sec / baseline_jps,
            p.utilization,
            p.queued,
            p.rejected,
        );
        phases_json.push(j);
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"workers\": {},\n",
            "  \"traffic\": {{\"suite_jobs_per_phase\": {}, \"clients_share_suite\": true, ",
            "\"miter\": {{\"pis\": {}, \"ands\": {}, \"pos\": {}}}}},\n",
            "  \"baseline\": {{\"transport\": \"{}\", \"jobs\": {}, \"wall_seconds\": {:.6}, ",
            "\"jobs_per_sec\": {:.3}}},\n",
            "  \"phases\": [\n{}\n  ],\n",
            "  \"peak\": {{\"clients\": {}, \"jobs_per_sec\": {:.3}, ",
            "\"speedup_vs_baseline\": {:.3}, \"worker_utilization\": {:.6}}},\n",
            "  \"jobs_completed\": {},\n",
            "  \"job_memo_hits\": {},\n",
            "  \"fused_shards\": {},\n",
            "  \"fused_dispatches\": {},\n",
            "  \"cache_hit_rate\": {:.6}\n",
            "}}\n"
        ),
        scale,
        workers,
        suite_len,
        COLD_PIS,
        COLD_ANDS,
        COLD_POS,
        transport,
        baseline_jobs,
        baseline_wall,
        baseline_jps,
        phases_json.join(",\n"),
        peak.clients,
        peak.jobs_per_sec,
        speedup,
        peak.utilization,
        stats.jobs_completed,
        stats.job_memo_hits,
        stats.fused_shards,
        stats.fused_dispatches,
        stats.cache_hit_rate(),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}

/// One saturation client: sweeps the whole shared suite starting at a
/// round-robin offset (client `c` of `n` starts `suite_len * c / n` in),
/// so concurrent clients never submit the same miter at the same
/// moment — the first to arrive proves it, later ones hit the shared
/// memo. Fire-and-forget pipelining: submits stream out without waiting
/// for acks, throttling on *results* (at most [`WINDOW`] unresolved
/// jobs). The bench sizes the queue so nothing is ever rejected — a
/// reject here is a config bug and panics.
fn run_client(addr: SocketAddr, suite: &Suite, client_idx: usize, clients: usize) {
    let mut client = NetClient::connect(addr).expect("client connect");
    let n = suite.files.len();
    let start = n * client_idx / clients;
    let mut outstanding = 0usize;
    let drain_one = |client: &mut NetClient, outstanding: &mut usize| loop {
        let event = client.read_event().expect("event");
        match get(&event, "event").and_then(JsonValue::as_str) {
            Some("result") => {
                *outstanding -= 1;
                return;
            }
            Some("submitted") => {}
            other => panic!("unexpected event {other:?}: {event:?}"),
        }
    };
    for k in 0..n {
        // Lanes alternate per job, not per client: interactive jobs get
        // priority, so a client stuck all-batch would fall behind the
        // all-interactive ones until their suite frontiers collide and
        // they duplicate in-flight work.
        let lane = if (client_idx + k).is_multiple_of(2) {
            Lane::Interactive
        } else {
            Lane::Batch
        };
        let line = suite.submit_line((start + k) % n, lane, k as u64 + 1);
        client.send_line(&line).expect("submit");
        outstanding += 1;
        while outstanding >= WINDOW {
            drain_one(&mut client, &mut outstanding);
        }
    }
    while outstanding > 0 {
        drain_one(&mut client, &mut outstanding);
    }
}

/// Runs the synchronous single-client baseline; returns the transport
/// label and the timed wall seconds.
fn run_baseline(suite: &Suite) -> (String, f64) {
    match try_subprocess_baseline(suite) {
        Some(wall) => ("stdin-subprocess".into(), wall),
        None => {
            eprintln!("net_bench: svc binary not found, using in-process baseline");
            ("in-process".into(), inprocess_baseline(suite))
        }
    }
}

/// The shipped front-end as a subprocess: per job a synchronous
/// submit→ack→drain→stats exchange over its stdio pipes.
fn try_subprocess_baseline(suite: &Suite) -> Option<f64> {
    let svc_path = std::env::current_exe().ok()?.parent()?.join("svc");
    if !svc_path.exists() {
        return None;
    }
    let mut child = std::process::Command::new(&svc_path)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .ok()?;
    let mut stdin = child.stdin.take().expect("child stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout")).lines();
    let mut round_trip = |line: &str, until: &str| {
        writeln!(stdin, "{line}").expect("write to svc");
        for reply in stdout.by_ref() {
            let reply = reply.expect("read from svc");
            let fields = parse_object(&reply).expect("svc event");
            match get(&fields, "event").and_then(JsonValue::as_str) {
                Some(e) if e == until => return,
                Some("error") => panic!("svc error: {reply}"),
                _ => {}
            }
        }
        panic!("svc closed its pipe early");
    };
    // Transport warmup off the clock, mirroring the server phases'.
    round_trip(r#"{"op":"submit","demo":"adder","width":3}"#, "submitted");
    round_trip(r#"{"op":"drain"}"#, "stats");
    let start = Instant::now();
    for idx in 0..suite.files.len() {
        round_trip(&suite.submit_line(idx, Lane::Interactive, 0), "submitted");
        round_trip(r#"{"op":"drain"}"#, "stats");
    }
    let wall = start.elapsed().as_secs_f64();
    drop(stdin);
    let _ = child.wait();
    Some(wall)
}

/// In-process fallback baseline: the same synchronous one-job-at-a-time
/// cadence against a bare service with shipped defaults.
fn inprocess_baseline(suite: &Suite) -> f64 {
    let svc = CecService::new(SvcConfig::default());
    let start = Instant::now();
    for path in &suite.files {
        let id = svc.submit(parsweep_aig::read_aiger_file(path).expect("suite miter"));
        svc.wait(id);
    }
    start.elapsed().as_secs_f64()
}

//! Service throughput smoke benchmark: submits the generator suite to
//! the CEC job service twice over — the second pass should settle from
//! the structural result cache — and emits `BENCH_svc.json` with
//! jobs/sec, cache hit rate, shard counts and worker utilization.
//!
//! Usage: `svc [tiny|small|medium] [output.json]`

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use parsweep_bench::harness::{suite, Scale};
use parsweep_sat::Verdict;
use parsweep_svc::{CecService, SvcConfig};

/// Wall-time bound per job so a hard case cannot stall the smoke run.
const JOB_DEADLINE: Duration = Duration::from_secs(5);

fn verdict_tag(v: &Verdict) -> &'static str {
    match v {
        Verdict::Equivalent => "EQ",
        Verdict::NotEquivalent(_) => "NEQ",
        Verdict::Undecided => "UNDEC",
    }
}

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Tiny);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_svc.json".to_string());

    let workers = std::thread::available_parallelism().map_or(2, |n| n.get());
    let svc = CecService::new(SvcConfig {
        workers,
        default_deadline: Some(JOB_DEADLINE),
        ..SvcConfig::default()
    });

    eprintln!("# svc throughput smoke bench ({scale:?}, {workers} workers)");
    let cases = suite(scale);
    let start = Instant::now();
    // Two passes over the whole suite: every second-pass job repeats a
    // first-pass miter, so its shards should all be cache hits.
    let jobs: Vec<_> = (0..2)
        .flat_map(|_| {
            cases
                .iter()
                .map(|c| (c.name.clone(), svc.submit(c.miter.clone())))
        })
        .collect();

    let mut cases_json = Vec::new();
    for (name, id) in jobs {
        let r = svc.wait(id).expect("job exists");
        eprintln!(
            "{:<16} {} shards {} cache {}h/{}m wait {:.3}s total {:.3}s{}",
            name,
            verdict_tag(&r.verdict),
            r.stats.shards,
            r.stats.cache_hits,
            r.stats.cache_misses,
            r.stats.queue_wait.as_secs_f64(),
            r.stats.total.as_secs_f64(),
            if r.stats.cancelled { " (deadline)" } else { "" },
        );
        let mut j = String::new();
        let _ = write!(
            j,
            concat!(
                "    {{\"name\": \"{}\", \"verdict\": \"{}\", \"shards\": {}, ",
                "\"cache_hits\": {}, \"cache_misses\": {}, ",
                "\"queue_wait_seconds\": {:.6}, \"total_seconds\": {:.6}, ",
                "\"cancelled\": {}}}"
            ),
            name,
            verdict_tag(&r.verdict),
            r.stats.shards,
            r.stats.cache_hits,
            r.stats.cache_misses,
            r.stats.queue_wait.as_secs_f64(),
            r.stats.total.as_secs_f64(),
            r.stats.cancelled,
        );
        cases_json.push(j);
    }
    let wall = start.elapsed().as_secs_f64();
    let stats = svc.stats();
    let jobs_per_sec = if wall > 0.0 {
        stats.jobs_completed as f64 / wall
    } else {
        0.0
    };
    eprintln!("{stats}");
    eprintln!("jobs/sec: {jobs_per_sec:.3}");

    let json = format!(
        concat!(
            "{{\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"workers\": {},\n",
            "  \"wall_seconds\": {:.6},\n",
            "  \"jobs_completed\": {},\n",
            "  \"jobs_per_sec\": {:.6},\n",
            "  \"shards_total\": {},\n",
            "  \"cache_hits\": {},\n",
            "  \"cache_misses\": {},\n",
            "  \"cache_hit_rate\": {:.6},\n",
            "  \"worker_utilization\": {:.6},\n",
            "  \"jobs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale,
        workers,
        wall,
        stats.jobs_completed,
        jobs_per_sec,
        stats.shards_total,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate(),
        stats.worker_utilization,
        cases_json.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}

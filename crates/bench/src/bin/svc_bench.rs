//! Service throughput smoke benchmark: submits the generator suite to
//! the CEC job service twice over — the second pass should settle from
//! the structural result cache — then runs a repeat-traffic phase of
//! structurally *perturbed* duplicate cones (same function, different
//! gates) that only the semantic (NPN-canonical) cache tier can settle.
//! Emits `BENCH_svc.json` with jobs/sec, structural and semantic cache
//! hit rates, shard counts and worker utilization.
//!
//! Usage: `svc [tiny|small|medium] [output.json]`

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use parsweep_aig::{miter, Aig};
use parsweep_bench::harness::{suite, Scale};
use parsweep_sat::Verdict;
use parsweep_svc::{CecService, SvcConfig};

/// Wall-time bound per job so a hard case cannot stall the smoke run.
const JOB_DEADLINE: Duration = Duration::from_secs(5);

fn verdict_tag(v: &Verdict) -> &'static str {
    match v {
        Verdict::Equivalent => "EQ",
        Verdict::NotEquivalent(_) => "NEQ",
        Verdict::Undecided => "UNDEC",
    }
}

/// A seed-coded 3-input single-PO net. The *function* depends only on
/// `seed`; `salt` threads in strash-proof absorption redundancy
/// (`cur & (cur | x)` == `cur`), so the same seed at different salts
/// yields functionally identical but structurally different networks —
/// exactly the repeat traffic a structural cache key cannot collapse.
fn coded_net(seed: u64, salt: u64) -> Aig {
    let mut aig = Aig::new();
    let xs = aig.add_inputs(3);
    let mut cur = xs[(seed % 3) as usize];
    let mut s = seed / 3;
    for _ in 0..5 {
        let pick = xs[(s % 3) as usize];
        s /= 3;
        let pick = if s & 1 == 1 { !pick } else { pick };
        s >>= 1;
        cur = if s & 1 == 1 {
            aig.and(cur, pick)
        } else {
            aig.xor(cur, pick)
        };
        s >>= 1;
    }
    for i in 0..salt {
        let x = xs[((seed + i) % 3) as usize];
        let either = aig.or(cur, x);
        cur = aig.and(cur, either);
    }
    aig.add_po(cur);
    aig
}

/// Repeat-traffic phase: `pairs` distinct function pairs are checked
/// twice, the second time as structurally perturbed (salted) rebuilds.
/// The second wave misses the structural cache by construction; each of
/// its cones settles either from the semantic tier or by re-proving.
/// Returns `(wave_shards, structural_hits, semantic_hits, wall_seconds)`
/// for the perturbed wave.
fn repeat_traffic(pairs: u64, workers: usize) -> (u64, u64, u64, f64) {
    let svc = CecService::new(SvcConfig {
        workers,
        default_deadline: Some(JOB_DEADLINE),
        // The whole-job memo cannot hit (the rebuilds hash differently);
        // disabling it just keeps the accounting story clean.
        job_memo_capacity: 0,
        ..SvcConfig::default()
    });
    let wave = |salt_a: u64, salt_b: u64| -> Vec<_> {
        (0..pairs)
            .map(|i| {
                // Mixed traffic: equivalent and inequivalent pairs, one
                // NPN class per pair index.
                let (sa, sb) = (3 + 17 * i, 3 + 17 * i + 5 * (i % 2));
                let m = miter(&coded_net(sa, salt_a), &coded_net(sb, salt_b)).unwrap();
                svc.submit(m)
            })
            .collect()
    };
    for id in wave(0, 1) {
        svc.wait(id);
    }
    let before = svc.stats();
    let start = Instant::now();
    let ids = wave(2, 3);
    let mut shards = 0u64;
    for id in ids {
        let r = svc.wait(id).expect("job exists");
        shards += r.stats.shards as u64;
    }
    let wall = start.elapsed().as_secs_f64();
    let after = svc.stats();
    (
        shards,
        after.cache_hits - before.cache_hits,
        after.cache_semantic_hits - before.cache_semantic_hits,
        wall,
    )
}

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Tiny);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_svc.json".to_string());

    let workers = std::thread::available_parallelism().map_or(2, |n| n.get());
    let svc = CecService::new(SvcConfig {
        workers,
        default_deadline: Some(JOB_DEADLINE),
        ..SvcConfig::default()
    });

    eprintln!("# svc throughput smoke bench ({scale:?}, {workers} workers)");
    let cases = suite(scale);
    let start = Instant::now();
    // Two passes over the whole suite: every second-pass job repeats a
    // first-pass miter, so its shards should all be cache hits.
    let jobs: Vec<_> = (0..2)
        .flat_map(|_| {
            cases
                .iter()
                .map(|c| (c.name.clone(), svc.submit(c.miter.clone())))
        })
        .collect();

    let mut cases_json = Vec::new();
    for (name, id) in jobs {
        let r = svc.wait(id).expect("job exists");
        eprintln!(
            "{:<16} {} shards {} cache {}h/{}m wait {:.3}s total {:.3}s{}",
            name,
            verdict_tag(&r.verdict),
            r.stats.shards,
            r.stats.cache_hits,
            r.stats.cache_misses,
            r.stats.queue_wait.as_secs_f64(),
            r.stats.total.as_secs_f64(),
            if r.stats.cancelled { " (deadline)" } else { "" },
        );
        let mut j = String::new();
        let _ = write!(
            j,
            concat!(
                "    {{\"name\": \"{}\", \"verdict\": \"{}\", \"shards\": {}, ",
                "\"cache_hits\": {}, \"cache_misses\": {}, ",
                "\"queue_wait_seconds\": {:.6}, \"total_seconds\": {:.6}, ",
                "\"cancelled\": {}}}"
            ),
            name,
            verdict_tag(&r.verdict),
            r.stats.shards,
            r.stats.cache_hits,
            r.stats.cache_misses,
            r.stats.queue_wait.as_secs_f64(),
            r.stats.total.as_secs_f64(),
            r.stats.cancelled,
        );
        cases_json.push(j);
    }
    let wall = start.elapsed().as_secs_f64();
    let stats = svc.stats();
    let jobs_per_sec = if wall > 0.0 {
        stats.jobs_completed as f64 / wall
    } else {
        0.0
    };
    eprintln!("{stats}");
    eprintln!("jobs/sec: {jobs_per_sec:.3}");

    // Repeat-traffic phase: structurally perturbed duplicates of small
    // cones, where only the semantic tier can collapse the re-check.
    let repeat_pairs = match scale {
        Scale::Tiny => 16,
        Scale::Small => 48,
        Scale::Medium => 128,
        Scale::Large => 256,
    };
    let (rt_shards, rt_structural, rt_semantic, rt_wall) = repeat_traffic(repeat_pairs, workers);
    eprintln!(
        "repeat traffic: {rt_shards} perturbed shards — {rt_structural} structural hits, \
         {rt_semantic} semantic hits ({:.0}% settled without an engine run)",
        if rt_shards > 0 {
            100.0 * (rt_structural + rt_semantic) as f64 / rt_shards as f64
        } else {
            0.0
        },
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"workers\": {},\n",
            "  \"wall_seconds\": {:.6},\n",
            "  \"jobs_completed\": {},\n",
            "  \"jobs_per_sec\": {:.6},\n",
            "  \"shards_total\": {},\n",
            "  \"cache_hits\": {},\n",
            "  \"cache_misses\": {},\n",
            "  \"cache_hit_rate\": {:.6},\n",
            "  \"cache_semantic_hits\": {},\n",
            "  \"worker_utilization\": {:.6},\n",
            "  \"repeat_traffic\": {{\n",
            "    \"pairs\": {},\n",
            "    \"perturbed_shards\": {},\n",
            "    \"structural_hits\": {},\n",
            "    \"semantic_hits\": {},\n",
            "    \"settled_cached_rate\": {:.6},\n",
            "    \"wall_seconds\": {:.6}\n",
            "  }},\n",
            "  \"jobs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale,
        workers,
        wall,
        stats.jobs_completed,
        jobs_per_sec,
        stats.shards_total,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate(),
        stats.cache_semantic_hits,
        stats.worker_utilization,
        repeat_pairs,
        rt_shards,
        rt_structural,
        rt_semantic,
        if rt_shards > 0 {
            (rt_structural + rt_semantic) as f64 / rt_shards as f64
        } else {
            0.0
        },
        rt_wall,
        cases_json.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}

//! Reproduces the paper's **Table II**: benchmark statistics and runtime
//! comparison of the SAT-sweeping baseline ("ABC &cec" role), the
//! portfolio checker ("Conformal" role) and the simulation-based engine
//! combined with the SAT fallback ("Ours (GPU+ABC)").
//!
//! Usage: `table2 [tiny|small|medium] [--budget <seconds>] [--case <name>]`

use std::time::{Duration, Instant};

use parsweep_bench::harness::{
    baseline_sat_config, combined_config, geomean, portfolio_config, suite, Scale,
};
use parsweep_core::combined_check;
use parsweep_par::Executor;
use parsweep_sat::{portfolio_check, sat_sweep, Verdict};

fn verdict_tag(v: &Verdict) -> &'static str {
    match v {
        Verdict::Equivalent => "eq",
        Verdict::NotEquivalent(_) => "NEQ!",
        Verdict::Undecided => "t/o",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut budget = Duration::from_secs(60);
    let mut only: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => {
                let secs: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--budget <seconds>");
                budget = Duration::from_secs(secs);
            }
            "--case" => {
                only = Some(it.next().expect("--case <name>").clone());
            }
            s => {
                scale = Scale::parse(s).unwrap_or_else(|| panic!("unknown scale {s:?}"));
            }
        }
    }

    let exec = Executor::new();
    println!("# Table II reproduction — scale {scale:?}, SAT wall budget {budget:?}");
    println!("# (timeouts count as the full budget when computing speedups, like the");
    println!("#  paper's 122-day cap for log2_10xd)");
    println!();
    println!(
        "{:<16} {:>7} {:>7} {:>9} {:>6} | {:>9} {:>9} | {:>8} {:>7} {:>8} {:>9} | {:>8} {:>8}",
        "Benchmark",
        "#PIs",
        "#POs",
        "#Nodes",
        "Lev",
        "SAT(s)",
        "Pfl(s)",
        "Eng(s)",
        "Red(%)",
        "SAT2(s)",
        "Total(s)",
        "vs.SAT",
        "vs.Pfl"
    );

    let mut vs_sat = Vec::new();
    let mut vs_pfl = Vec::new();
    for case in suite(scale) {
        if let Some(f) = &only {
            if !case.name.starts_with(f.as_str()) {
                continue;
            }
        }
        let m = &case.miter;
        let (pis, pos, nodes, levels) = (m.num_pis(), m.num_pos(), m.num_ands(), m.depth());

        // Column 1: standalone SAT sweeping.
        let t = Instant::now();
        let sat_res = sat_sweep(m, &exec, &baseline_sat_config(budget));
        let mut sat_secs = t.elapsed().as_secs_f64();
        let sat_tag = verdict_tag(&sat_res.verdict);
        if sat_res.verdict == Verdict::Undecided {
            sat_secs = budget.as_secs_f64();
        }

        // Column 2: portfolio checker.
        let t = Instant::now();
        let pfl_res = portfolio_check(m, &exec, &portfolio_config(budget));
        let mut pfl_secs = t.elapsed().as_secs_f64();
        let pfl_tag = verdict_tag(&pfl_res.verdict);
        if pfl_res.verdict == Verdict::Undecided {
            pfl_secs = budget.as_secs_f64();
        }

        // Column 3: the combined simulation engine + SAT flow.
        let comb = combined_check(m, &exec, &combined_config(budget));
        let eng_secs = comb.engine_seconds;
        let red = comb.engine.stats.reduction_pct();
        let mut total = comb.total_seconds();
        let comb_tag = verdict_tag(&comb.verdict);
        if comb.verdict == Verdict::Undecided {
            total = eng_secs + budget.as_secs_f64();
        }

        let su_sat = sat_secs / total;
        let su_pfl = pfl_secs / total;
        vs_sat.push(su_sat);
        vs_pfl.push(su_pfl);

        println!(
            "{:<16} {:>7} {:>7} {:>9} {:>6} | {:>7.2}{:<2} {:>7.2}{:<2} | {:>8.2} {:>7.1} {:>8.2} {:>7.2}{:<2} | {:>7.2}x {:>7.2}x",
            case.name, pis, pos, nodes, levels,
            sat_secs, sat_tag, pfl_secs, pfl_tag,
            eng_secs, red,
            comb.sat_seconds, total, comb_tag,
            su_sat, su_pfl
        );
    }
    println!();
    println!(
        "{:<16} {:>86} {:>7.2}x {:>7.2}x",
        "Geomean",
        "",
        geomean(&vs_sat),
        geomean(&vs_pfl)
    );
}

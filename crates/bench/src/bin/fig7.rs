//! Reproduces the paper's **Figure 7**: for each case, the time for the
//! SAT-sweeping baseline to prove the miter as reduced by successive
//! engine phase prefixes (P, P+G, P+G+L), normalized by the time of the
//! standalone baseline on the unreduced miter.
//!
//! Usage: `fig7 [tiny|small|medium] [--budget <seconds>]`

use std::time::{Duration, Instant};

use parsweep_bench::harness::{baseline_sat_config, suite, Scale};
use parsweep_core::{sim_sweep_traced, EngineConfig};
use parsweep_par::Executor;
use parsweep_sat::{sat_sweep, Verdict};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut budget = Duration::from_secs(60);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => {
                budget = Duration::from_secs(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--budget <s>"),
                );
            }
            s => scale = Scale::parse(s).unwrap_or_else(|| panic!("unknown scale {s:?}")),
        }
    }
    let exec = Executor::new();
    let cfg = baseline_sat_config(budget);

    println!("# Figure 7 reproduction — SAT time on engine-reduced miters,");
    println!("# normalized to standalone SAT time (1.0 = no help from the engine)");
    println!();
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "Benchmark", "none", "P", "PG", "PGL"
    );
    for case in suite(scale) {
        // Standalone baseline time (timeouts count as the budget).
        let t = Instant::now();
        let base = sat_sweep(&case.miter, &exec, &cfg);
        let base_secs = if base.verdict == Verdict::Undecided {
            budget.as_secs_f64()
        } else {
            t.elapsed().as_secs_f64()
        };

        let (_, snapshots) = sim_sweep_traced(&case.miter, &exec, &EngineConfig::scaled());
        let mut row = format!("{:<16} {:>10.2}", case.name, 1.0);
        for (_, snap) in &snapshots {
            let t = Instant::now();
            let r = sat_sweep(snap, &exec, &cfg);
            let secs = if r.verdict == Verdict::Undecided {
                budget.as_secs_f64()
            } else {
                t.elapsed().as_secs_f64()
            };
            row.push_str(&format!(" {:>10.3}", secs / base_secs.max(1e-9)));
        }
        // Pad missing snapshots (phases skipped when already proved).
        for _ in snapshots.len()..3 {
            row.push_str(&format!(" {:>10}", "0*"));
        }
        println!("{row}");
    }
    println!();
    println!("# 0* = the engine had already proved the miter before that phase.");
}

//! Device-runtime smoke benchmark: runs the engine over the generator
//! suite and emits `BENCH_runtime.json` with wall time, the cost model's
//! critical-path (`modeled_time`) and serialized estimates, and the
//! buffer-arena recycling counters.
//!
//! Usage: `runtime [tiny|small|medium] [output.json]`

use std::fmt::Write as _;

use parsweep_bench::harness::{suite, Scale};
use parsweep_core::{sim_sweep, EngineConfig, Report};
use parsweep_par::Executor;

/// Modeled device width used for the time estimates (threads) — the
/// tracing subsystem's canonical width, so bench numbers and span
/// `modeled_time` arguments stay comparable.
const MODEL_CORES: u64 = parsweep_trace::MODEL_CORES;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Tiny);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_runtime.json".to_string());
    let exec = Executor::new();

    let mut cases_json = Vec::new();
    let mut total_seconds = 0.0f64;
    let (mut total_modeled, mut total_serialized) = (0u64, 0u64);
    let mut peak_bytes = 0u64;

    eprintln!("# device-runtime smoke bench ({scale:?}, modeled cores = {MODEL_CORES})");
    for case in suite(scale) {
        exec.reset_stats();
        let r = sim_sweep(&case.miter, &exec, &EngineConfig::scaled());
        let s = exec.stats();
        let modeled = s.modeled_time(MODEL_CORES);
        let serialized = s.serialized_time(MODEL_CORES);
        total_seconds += r.stats.seconds;
        total_modeled += modeled;
        total_serialized += serialized;
        peak_bytes = peak_bytes.max(s.arena_peak_bytes);
        eprintln!(
            "{:<16} {} wall {:.3}s modeled {} serialized {} arena {}h/{}m peak {}B",
            case.name,
            Report::new(&r).verdict_tag(),
            r.stats.seconds,
            modeled,
            serialized,
            s.arena_hits,
            s.arena_misses,
            s.arena_peak_bytes,
        );
        let mut j = String::new();
        let _ = write!(
            j,
            concat!(
                "    {{\"name\": \"{}\", \"verdict\": \"{}\", \"seconds\": {:.6}, ",
                "\"modeled_time\": {}, \"serialized_time\": {}, \"launches\": {}, ",
                "\"arena_hits\": {}, \"arena_misses\": {}, \"arena_peak_bytes\": {}}}"
            ),
            case.name,
            Report::new(&r).verdict_tag(),
            r.stats.seconds,
            modeled,
            serialized,
            s.launches,
            s.arena_hits,
            s.arena_misses,
            s.arena_peak_bytes,
        );
        cases_json.push(j);
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"model_cores\": {},\n",
            "  \"total_wall_seconds\": {:.6},\n",
            "  \"total_modeled_time\": {},\n",
            "  \"total_serialized_time\": {},\n",
            "  \"max_arena_peak_bytes\": {},\n",
            "  \"cases\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale,
        MODEL_CORES,
        total_seconds,
        total_modeled,
        total_serialized,
        peak_bytes,
        cases_json.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}

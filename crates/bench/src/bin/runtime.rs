//! Device-runtime smoke benchmark: runs the engine over the generator
//! suite and emits `BENCH_runtime.json` with wall time, the cost model's
//! critical-path (`modeled_time`) and serialized estimates, the launch
//! split (pool-dispatched vs inline), the incremental-simulation counters
//! (pruned rounds, dirty-cone resim node counts), and the buffer-arena
//! recycling counters.
//!
//! Besides the nine sweep cases, two *deep-FRAIG* rows
//! (`multiplier_fraig`, `log2_fraig`) run [`fraig`] over the arithmetic
//! miters: FRAIG skips the PO-exhaustive phase entirely, so these rows
//! exercise the incremental G/L machinery — support-pruned rounds,
//! in-place refinement, and dirty-cone resimulation after merges — that
//! the sweep rows (which resolve exhaustively at tiny scale) do not.
//!
//! A `prover_dispatch` section compares the fixed engine sequence
//! against the adaptive per-class dispatcher on the deep-FRAIG miters
//! and one synthetic multiplier-like hard cone, asserting the two agree
//! on every verdict; `bench_delta.py` surfaces and gates the wall times.
//!
//! A `window_streaming` section runs the same sweep twice — whole-table
//! residency vs the level-windowed streaming path — on Small-scale
//! miters and records the peak-live arena reduction; a Tiny-scale
//! invocation additionally emits a `small_cases` row set so the
//! committed JSON always carries Small-scale data. Per-case rows
//! include `arena_peak_live_bytes` and `arena_peak_bytes_per_node`,
//! the memory leaves `bench_delta.py` gates.
//!
//! Usage: `runtime [tiny|small|medium|large] [output.json]`

use std::fmt::Write as _;

use parsweep_aig::{miter, Aig, Lit};
use parsweep_bench::harness::{suite, Case, Scale};
use parsweep_core::{fraig, sim_sweep, EngineConfig, EngineStats, Report, SigWindowConfig};
use parsweep_par::{CancelToken, Executor, LaunchStats, SanitizerConfig};
use parsweep_sat::{portfolio_check, PortfolioConfig, Prover, ProverConfig, ProverMode, Verdict};

/// Modeled device width used for the time estimates (threads) — the
/// tracing subsystem's canonical width, so bench numbers and span
/// `modeled_time` arguments stay comparable.
const MODEL_CORES: u64 = parsweep_trace::MODEL_CORES;

/// The suite cases FRAIG'ed for the resim-heavy rows.
const FRAIG_CASES: [&str; 2] = ["multiplier", "log2"];

/// A multiplier-like hard cone for the prover-dispatch rows: `rounds`
/// identical Toffoli-style mixing rounds (`a ^ (b & c)`, balanced and
/// non-converging, so simulation signatures stay distinct) over `n`
/// inputs — strash-shared between the two sides of the miter — topped by
/// an output layer built
/// with two different majority decompositions (AND-OR sum-of-products vs
/// mux). Every PO's support is the full `n` inputs over a deep shared
/// cone, so the exhaustive engine is *admitted but slow* (one 2^n-pattern
/// window per PO over the whole cone), while SAT sweeping settles it
/// quickly: the only candidate pairs are the output-layer twins, each a
/// small local proof over shared fanins — exactly the class where the
/// fixed sequence commits to the slow engine and the adaptive race
/// early-cancels it.
fn maj_rounds_miter(n: usize, rounds: usize) -> Aig {
    fn build(n: usize, rounds: usize, mux_form: bool) -> Aig {
        let mut aig = Aig::new();
        let mut state: Vec<Lit> = aig.add_inputs(n);
        for r in 0..rounds {
            let mut next = Vec::with_capacity(n);
            for i in 0..n {
                let (a, b, c) = (state[i], state[(i + 1 + r) % n], state[(i + 7) % n]);
                let bc = aig.and(b, c);
                next.push(aig.xor(a, bc));
            }
            state = next;
        }
        // Output layer: the same majority per PO, in two structurally
        // different forms. Each PO is one exhaustive window over the full
        // 2^n pattern space.
        for i in 0..n {
            let (a, b, c) = (state[i], state[(i + 1) % n], state[(i + 7) % n]);
            let po = if mux_form {
                let or = aig.or(b, c);
                let and = aig.and(b, c);
                aig.mux(a, or, and)
            } else {
                aig.maj3(a, b, c)
            };
            aig.add_po(po);
        }
        aig
    }
    miter(&build(n, rounds, false), &build(n, rounds, true)).expect("same interface")
}

fn case_json(
    name: &str,
    verdict: &str,
    stats: &EngineStats,
    s: &LaunchStats,
    nodes: usize,
) -> String {
    let mut j = String::new();
    let _ = write!(
        j,
        concat!(
            "    {{\"name\": \"{}\", \"verdict\": \"{}\", \"seconds\": {:.6}, ",
            "\"modeled_time\": {}, \"serialized_time\": {}, \"launches\": {}, ",
            "\"inline_launches\": {}, \"pruned_rounds\": {}, ",
            "\"resim_clean\": {}, \"resim_dirty\": {}, ",
            "\"arena_hits\": {}, \"arena_misses\": {}, \"arena_peak_bytes\": {}, ",
            "\"arena_peak_live_bytes\": {}, \"arena_peak_bytes_per_node\": {:.1}, ",
            "\"static_verified_launches\": {}, \"static_verified_replays\": {}}}"
        ),
        name,
        verdict,
        stats.seconds,
        s.modeled_time(MODEL_CORES),
        s.serialized_time(MODEL_CORES),
        s.launches,
        s.inline_launches,
        stats.pruned_sim_rounds,
        stats.resim_clean_nodes,
        stats.resim_dirty_nodes,
        s.arena_hits,
        s.arena_misses,
        s.arena_peak_bytes,
        s.arena_peak_live_bytes,
        s.arena_peak_live_bytes as f64 / nodes.max(1) as f64,
        s.static_verified_launches,
        s.static_verified_replays,
    );
    j
}

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Tiny);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_runtime.json".to_string());
    let exec = Executor::new();

    let mut cases_json = Vec::new();
    let mut total_seconds = 0.0f64;
    let (mut total_modeled, mut total_serialized) = (0u64, 0u64);
    let (mut total_launches, mut total_inline) = (0u64, 0u64);
    // Two peak aggregates: `peak_bytes` is the arena *footprint*
    // high-water (pools never free, so across sequential cases this is a
    // cumulative-allocation figure, not any one case's working set);
    // `peak_live_bytes` maxes the per-case *live* peaks, which
    // `reset_stats` rebases between cases — the honest per-case number.
    let mut peak_bytes = 0u64;
    let mut peak_live_bytes = 0u64;
    let mut report = |name: &str,
                      verdict: &str,
                      stats: &EngineStats,
                      s: &LaunchStats,
                      nodes: usize| {
        let modeled = s.modeled_time(MODEL_CORES);
        total_seconds += stats.seconds;
        total_modeled += modeled;
        total_serialized += s.serialized_time(MODEL_CORES);
        total_launches += s.launches;
        total_inline += s.inline_launches;
        peak_bytes = peak_bytes.max(s.arena_peak_bytes);
        peak_live_bytes = peak_live_bytes.max(s.arena_peak_live_bytes);
        eprintln!(
            "{:<16} {} wall {:.3}s modeled {} launches {}p+{}i resim {}c/{}d arena {}h/{}m live-peak {}B",
            name,
            verdict,
            stats.seconds,
            modeled,
            s.launches,
            s.inline_launches,
            stats.resim_clean_nodes,
            stats.resim_dirty_nodes,
            s.arena_hits,
            s.arena_misses,
            s.arena_peak_live_bytes,
        );
        cases_json.push(case_json(name, verdict, stats, s, nodes));
    };

    eprintln!("# device-runtime smoke bench ({scale:?}, modeled cores = {MODEL_CORES})");
    let cases = suite(scale);
    for case in &cases {
        exec.reset_stats();
        let r = sim_sweep(&case.miter, &exec, &EngineConfig::scaled());
        let s = exec.stats();
        report(
            &case.name,
            Report::new(&r).verdict_tag(),
            &r.stats,
            &s,
            case.miter.num_nodes(),
        );
    }
    // A tighter global support bound and fewer random words than the
    // sweep rows: wide pairs fall through to later rounds and the
    // local phases, and coarse initial classes need several refine
    // rounds — together they keep the dirty-cone resim and in-place
    // refinement paths busy. Local phases are capped so the row stays
    // smoke-bench-sized (full reduction is not the point here).
    let fraig_cfg = || {
        let mut cfg = EngineConfig::scaled().with_support_bounds(18, 14, 7);
        cfg.sim_words = 2;
        cfg.max_local_phases = 2;
        cfg
    };
    for base in FRAIG_CASES {
        let case = cases
            .iter()
            .find(|c| c.name.starts_with(base))
            .expect("fraig case names come from the suite");
        exec.reset_stats();
        let fr = fraig(&case.miter, &exec, &fraig_cfg());
        let s = exec.stats();
        let name = format!("{base}_fraig");
        let verdict = if fr.stats.final_ands < fr.stats.initial_ands {
            "reduced"
        } else {
            "unchanged"
        };
        report(&name, verdict, &fr.stats, &s, case.miter.num_nodes());
    }

    // Small-scale rows, committed alongside the Tiny rows: big enough
    // that signature-table residency is a real cost, small enough for a
    // smoke bench. At Small scale or above the main loop already covers
    // them, so this extra set only runs (and only appears in the JSON)
    // for a Tiny-scale invocation.
    let small_suite = if scale == Scale::Tiny {
        suite(Scale::Small)
    } else {
        Vec::new()
    };
    let pick = |pool: &'static str| -> &Case {
        let from = if small_suite.is_empty() {
            &cases
        } else {
            &small_suite
        };
        from.iter()
            .find(|c| c.name.starts_with(pool))
            .expect("case names come from the suite")
    };
    let mut small_json = Vec::new();
    if !small_suite.is_empty() {
        eprintln!("# small-scale rows");
        for base in ["log2", "voter"] {
            let case = pick(base);
            exec.reset_stats();
            let r = sim_sweep(&case.miter, &exec, &EngineConfig::scaled());
            let s = exec.stats();
            eprintln!(
                "{:<16} {} wall {:.3}s live-peak {}B",
                format!("{}_small", case.name),
                Report::new(&r).verdict_tag(),
                r.stats.seconds,
                s.arena_peak_live_bytes,
            );
            small_json.push(case_json(
                &format!("{}_small", case.name),
                Report::new(&r).verdict_tag(),
                &r.stats,
                &s,
                case.miter.num_nodes(),
            ));
        }
    }

    // Residency comparison: the same sweep whole-table vs level-windowed,
    // on Small-scale miters (the acceptance regime). Disabling the
    // exhaustive PO phase (`k_po_all = k_po = 0`) and widening the
    // random pattern set forces the global phase's partial-simulation
    // signature tables to dominate the device arena — the regime the
    // streaming path is for; at depth-doubled scale the PO supports are
    // too wide for exhaustive tables anyway. Verdicts must match; the
    // committed JSON records the peak-live reduction.
    let mut window_json = Vec::new();
    eprintln!("# window streaming (whole-table vs level-windowed residency)");
    let stream_cfg = || {
        let mut cfg = EngineConfig::scaled();
        cfg.k_po_all = 0;
        cfg.k_po = 0;
        cfg.k_g = 12;
        cfg.sim_words = 128;
        cfg
    };
    // One Small-scale case keeps this section smoke-sized: log2's
    // PO-phase-free sweep runs for tens of minutes at Small scale, so
    // it stays out of the committed comparison.
    #[allow(clippy::single_element_loop)] // the set is meant to grow
    for base in ["voter"] {
        let case = pick(base);
        let resident_exec = Executor::new();
        let resident = sim_sweep(&case.miter, &resident_exec, &stream_cfg());
        let rs = resident_exec.stats();
        let windowed_exec = Executor::new();
        let windowed_cfg = stream_cfg().with_sig_window(SigWindowConfig::with_levels(4));
        let windowed = sim_sweep(&case.miter, &windowed_exec, &windowed_cfg);
        let ws = windowed_exec.stats();
        assert_eq!(
            Report::new(&resident).verdict_tag(),
            Report::new(&windowed).verdict_tag(),
            "{base}: windowed streaming changed the verdict"
        );
        assert!(
            ws.window_spills > 0,
            "{base}: windowed run never spilled a level"
        );
        let reduction = rs.arena_peak_live_bytes as f64 / ws.arena_peak_live_bytes.max(1) as f64;
        eprintln!(
            "{:<16} {} resident {}B windowed {}B (+{}B spill tier) reduction {:.2}x spills {}",
            base,
            Report::new(&windowed).verdict_tag(),
            rs.arena_peak_live_bytes,
            ws.arena_peak_live_bytes,
            ws.spill_peak_bytes,
            reduction,
            ws.window_spills,
        );
        let mut j = String::new();
        let _ = write!(
            j,
            concat!(
                "    {{\"name\": \"{}\", \"verdict\": \"{}\", ",
                "\"resident_peak_live_bytes\": {}, \"windowed_peak_live_bytes\": {}, ",
                "\"spill_peak_bytes\": {}, \"window_spills\": {}, ",
                "\"window_spill_bytes\": {}, \"peak_reduction\": {:.3}}}"
            ),
            case.name,
            Report::new(&windowed).verdict_tag(),
            rs.arena_peak_live_bytes,
            ws.arena_peak_live_bytes,
            ws.spill_peak_bytes,
            ws.window_spills,
            ws.window_spill_bytes,
            reduction,
        );
        window_json.push(j);
    }

    // Sanitizer-overhead comparison on the resim-heavy rows: the same
    // FRAIG run once with the dynamic sanitizer forced onto declared
    // launches (cross-check mode, every kernel serialized and audited)
    // and once on a plain sanitizing executor, where the statically
    // verified launches skip dynamic sanitization entirely.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut overhead_json = Vec::new();
    eprintln!("# sanitizer overhead (dynamic cross-check vs verified fast path)");
    for base in FRAIG_CASES {
        let case = cases
            .iter()
            .find(|c| c.name.starts_with(base))
            .expect("fraig case names come from the suite");
        let dynamic_exec = Executor::with_sanitizer_config(
            threads,
            SanitizerConfig {
                check_declared: true,
                ..SanitizerConfig::default()
            },
        );
        let dynamic = fraig(&case.miter, &dynamic_exec, &fraig_cfg());
        let verified_exec = Executor::with_sanitizer(threads);
        let verified = fraig(&case.miter, &verified_exec, &fraig_cfg());
        assert_eq!(
            dynamic.stats.final_ands, verified.stats.final_ands,
            "verified replay changed the {base} FRAIG result"
        );
        assert!(
            verified_exec.stats().static_verified_launches > 0,
            "{base} FRAIG launched nothing on the verified fast path"
        );
        let overhead_pct = if verified.stats.seconds > 0.0 {
            (dynamic.stats.seconds - verified.stats.seconds) / verified.stats.seconds * 100.0
        } else {
            0.0
        };
        eprintln!(
            "{:<16} dynamic {:.3}s verified {:.3}s overhead {:+.1}%",
            format!("{base}_fraig"),
            dynamic.stats.seconds,
            verified.stats.seconds,
            overhead_pct,
        );
        let mut j = String::new();
        let _ = write!(
            j,
            concat!(
                "    {{\"name\": \"{}_fraig\", \"dynamic_seconds\": {:.6}, ",
                "\"verified_seconds\": {:.6}, \"overhead_pct\": {:.1}}}"
            ),
            base, dynamic.stats.seconds, verified.stats.seconds, overhead_pct,
        );
        overhead_json.push(j);
    }

    // Prover-dispatch comparison: the fixed engine sequence vs the
    // adaptive dispatcher on whole deep-FRAIG miters and on a synthetic
    // multiplier-like hard cone. The hard cone is the row the adaptive
    // refactor exists for: the exhaustive engine is admitted (support
    // under the cap) but pays 2^support over a deep cone, so the fixed
    // sequence commits to it, while the adaptive dispatcher races it
    // against SAT sweeping and cancels the loser at its next poll point.
    let mut prover_json = Vec::new();
    eprintln!("# prover dispatch (sequential fixed sequence vs adaptive race)");
    let mut dispatch_cases: Vec<(String, Aig)> = FRAIG_CASES
        .iter()
        .map(|base| {
            let case = cases
                .iter()
                .find(|c| c.name.starts_with(base))
                .expect("dispatch case names come from the suite");
            (format!("{base}_dispatch"), case.miter.clone())
        })
        .collect();
    dispatch_cases.push(("maj_rounds_hard_cone".to_string(), maj_rounds_miter(20, 16)));
    for (name, m) in &dispatch_cases {
        let cfg = PortfolioConfig::default();
        let sequential = portfolio_check(m, &exec, &cfg);
        let prover = Prover::new(ProverConfig {
            mode: ProverMode::Adaptive,
            ..ProverConfig::default()
        });
        let adaptive = prover.prove(m, &exec, &CancelToken::never());
        assert_eq!(
            sequential.verdict.is_equivalent(),
            adaptive.verdict.is_equivalent(),
            "{name}: adaptive dispatch disagreed with the fixed sequence"
        );
        let adaptive_engine = adaptive.engine.map_or("none", |e| e.name());
        let speedup = if adaptive.seconds > 0.0 {
            sequential.seconds / adaptive.seconds
        } else {
            1.0
        };
        eprintln!(
            "{:<20} sequential {:.3}s ({}) adaptive {:.3}s ({}{}) speedup {:.2}x",
            name,
            sequential.seconds,
            sequential.engine.name(),
            adaptive.seconds,
            adaptive_engine,
            if adaptive.raced { ", raced" } else { "" },
            speedup,
        );
        let mut j = String::new();
        let _ = write!(
            j,
            concat!(
                "    {{\"name\": \"{}\", \"sequential_seconds\": {:.6}, ",
                "\"adaptive_seconds\": {:.6}, \"sequential_engine\": \"{}\", ",
                "\"adaptive_engine\": \"{}\", \"raced\": {}, \"speedup\": {:.3}}}"
            ),
            name,
            sequential.seconds,
            adaptive.seconds,
            sequential.engine.name(),
            adaptive_engine,
            adaptive.raced,
            speedup,
        );
        prover_json.push(j);
        // Undecided rows would make the comparison vacuous.
        assert!(
            !matches!(adaptive.verdict, Verdict::Undecided),
            "{name}: dispatch left the miter undecided"
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"model_cores\": {},\n",
            "  \"total_wall_seconds\": {:.6},\n",
            "  \"total_modeled_time\": {},\n",
            "  \"total_serialized_time\": {},\n",
            "  \"total_launches\": {},\n",
            "  \"total_inline_launches\": {},\n",
            "  \"max_arena_peak_bytes\": {},\n",
            "  \"max_arena_peak_live_bytes\": {},\n",
            "  \"cases\": [\n{}\n  ],\n",
            "  \"small_cases\": [\n{}\n  ],\n",
            "  \"window_streaming\": [\n{}\n  ],\n",
            "  \"sanitizer_overhead\": [\n{}\n  ],\n",
            "  \"prover_dispatch\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale,
        MODEL_CORES,
        total_seconds,
        total_modeled,
        total_serialized,
        total_launches,
        total_inline,
        peak_bytes,
        peak_live_bytes,
        cases_json.join(",\n"),
        small_json.join(",\n"),
        window_json.join(",\n"),
        overhead_json.join(",\n"),
        prover_json.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}

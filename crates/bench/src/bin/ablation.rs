//! Ablation study over the engine's design choices called out in
//! DESIGN.md: window merging (§III-B3), the number of cut-generation
//! passes (Table I), similarity-driven cut selection (§III-C1), and
//! repeated local phases (Fig. 5).
//!
//! Usage: `ablation [tiny|small|medium] [--case <name>]`

use parsweep_bench::harness::{suite, Scale};
use parsweep_core::{sim_sweep, EngineConfig, MergeStrategy};
use parsweep_cut::Pass;
use parsweep_par::Executor;

struct Variant {
    name: &'static str,
    cfg: EngineConfig,
}

fn variants() -> Vec<Variant> {
    let base = EngineConfig::scaled();
    let mut v = vec![Variant {
        name: "full engine",
        cfg: base.clone(),
    }];
    v.push(Variant {
        name: "no window merging",
        cfg: EngineConfig {
            window_merging: MergeStrategy::None,
            ..base.clone()
        },
    });
    v.push(Variant {
        name: "clustered merging",
        cfg: EngineConfig {
            window_merging: MergeStrategy::Clustered,
            ..base.clone()
        },
    });
    v.push(Variant {
        name: "distance-1 cex",
        cfg: EngineConfig {
            distance1_cex: true,
            ..base.clone()
        },
    });
    v.push(Variant {
        name: "adaptive passes",
        cfg: EngineConfig {
            adaptive_passes: true,
            ..base.clone()
        },
    });
    v.push(Variant {
        name: "reverse simulation",
        cfg: EngineConfig {
            reverse_sim: true,
            ..base.clone()
        },
    });
    v.push(Variant {
        name: "1 cut pass (fanout)",
        cfg: EngineConfig {
            passes: vec![Pass::Fanout],
            ..base.clone()
        },
    });
    v.push(Variant {
        name: "2 cut passes",
        cfg: EngineConfig {
            passes: vec![Pass::Fanout, Pass::SmallLevel],
            ..base.clone()
        },
    });
    v.push(Variant {
        name: "no similarity selection",
        cfg: EngineConfig {
            similarity_selection: false,
            ..base.clone()
        },
    });
    v.push(Variant {
        name: "single local phase",
        cfg: EngineConfig {
            max_local_phases: 1,
            ..base.clone()
        },
    });
    v.push(Variant {
        name: "no PO phase (k_P = 0)",
        cfg: EngineConfig {
            k_po_all: 0,
            k_po: 0,
            ..base
        },
    });
    v
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Tiny;
    let mut only: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--case" => only = Some(it.next().expect("--case <name>").clone()),
            s => scale = Scale::parse(s).unwrap_or_else(|| panic!("unknown scale {s:?}")),
        }
    }
    let exec = Executor::new();
    println!("# Ablation — engine design choices ({scale:?})");
    println!();
    println!(
        "{:<16} {:<24} {:>8} {:>8} {:>9} {:>12} {:>9}",
        "Benchmark", "Variant", "Red(%)", "Proved", "Inconcl.", "SimWords", "Time(s)"
    );
    for case in suite(scale) {
        if let Some(f) = &only {
            if !case.name.starts_with(f.as_str()) {
                continue;
            }
        }
        for variant in variants() {
            let r = sim_sweep(&case.miter, &exec, &variant.cfg);
            println!(
                "{:<16} {:<24} {:>8.1} {:>8} {:>9} {:>12} {:>9.2}",
                case.name,
                variant.name,
                r.stats.reduction_pct(),
                r.stats.proved_pairs,
                r.stats.inconclusive_checks,
                r.stats.sim_words,
                r.stats.seconds
            );
        }
        println!();
    }
}

//! # parsweep-bench — evaluation harness
//!
//! Reproduces every table and figure of the paper's evaluation:
//!
//! * **Table II** (`--bin table2`): runtime comparison of the SAT-sweeping
//!   baseline ("ABC &cec"), the portfolio checker ("Conformal"), and the
//!   simulation engine + SAT combined flow, on nine benchmark families
//!   mirroring the paper's EPFL/IWLS selection.
//! * **Figure 6** (`--bin fig6`): per-case runtime breakdown of the
//!   engine's P / G / L phases.
//! * **Figure 7** (`--bin fig7`): SAT proving time of the intermediate
//!   miters after the P, P+G and P+G+L phases, normalized to standalone
//!   SAT time.
//! * **Ablations** (`--bin ablation`): window merging, number of cut
//!   passes (Table I), similarity selection, repeated L phases.
//!
//! The library half provides the circuit generators ([`gen`]), arithmetic
//! building blocks ([`arith`]) and suite assembly ([`harness`]) shared by
//! the binaries and the Criterion benches.

#![warn(missing_docs)]

pub mod arith;
pub mod gen;
pub mod harness;

pub use harness::{case_by_name, geomean, suite, Case, Scale};

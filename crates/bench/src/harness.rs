//! The experiment harness: benchmark suite assembly (generate → optimize
//! with `resyn2` → enlarge with `double` → miter) and the checker
//! configurations used by the Table II / Fig. 6 / Fig. 7 reproductions.

use std::time::Duration;

use parsweep_aig::{miter, Aig};
use parsweep_core::{CombinedConfig, EngineConfig};
use parsweep_sat::{PortfolioConfig, SweepConfig};
use parsweep_synth::resyn2;

use crate::gen;

/// A prepared CEC case: original vs optimized versions and their miter.
#[derive(Clone, Debug)]
pub struct Case {
    /// Benchmark name with the paper's `nxd` doubling suffix.
    pub name: String,
    /// The original circuit (after doubling).
    pub original: Aig,
    /// The `resyn2`-optimized circuit (after doubling).
    pub optimized: Aig,
    /// The miter of the two.
    pub miter: Aig,
}

impl Case {
    /// Builds a case: optimize, double both sides `doublings` times,
    /// miter.
    pub fn build(name: &str, base: Aig, doublings: usize) -> Case {
        let optimized = resyn2(&base);
        let original = base.double_times(doublings);
        let optimized = optimized.double_times(doublings);
        let m = miter(&original, &optimized).expect("same interface");
        Case {
            name: if doublings > 0 {
                format!("{name}_{doublings}xd")
            } else {
                name.to_string()
            },
            original,
            optimized,
            miter: m,
        }
    }
}

/// Harness scale presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs (CI-friendly).
    Tiny,
    /// The default: minutes-long, large enough to separate the checkers.
    Small,
    /// Tens of minutes; closest laptop analogue of the paper's table.
    Medium,
    /// Hours-long runs with miters large enough that whole-table
    /// signature residency dominates memory — the scale the
    /// level-windowed streaming path exists for.
    Large,
}

impl Scale {
    /// Parses `tiny` / `small` / `medium` / `large`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }
}

/// Builds the nine-case suite mirroring the paper's Table II rows:
/// hyp, log2, multiplier, sqrt, square, voter, sin, ac97_ctrl, vga_lcd.
pub fn suite(scale: Scale) -> Vec<Case> {
    // (multiplier width, sqrt radicand half-width, log2 width, doublings…)
    let (mw, sqw, lw, lfrac, sinw, voter_n, bus_groups, vga_lanes, d_arith, d_wide) = match scale {
        Scale::Tiny => (6, 5, 8, 4, 8, 15, 6, 3, 1, 1),
        Scale::Small => (10, 10, 12, 6, 12, 25, 16, 6, 2, 2),
        Scale::Medium => (12, 12, 14, 8, 14, 41, 48, 12, 3, 3),
        Scale::Large => (14, 14, 16, 10, 16, 55, 96, 20, 4, 4),
    };
    vec![
        Case::build("hyp", gen::gen_hyp(sqw), d_arith),
        Case::build("log2", gen::gen_log2(lw, lfrac), d_arith),
        Case::build("multiplier", gen::gen_multiplier(mw), d_arith),
        Case::build("sqrt", gen::gen_sqrt(sqw), d_arith),
        Case::build("square", gen::gen_square(mw), d_arith),
        Case::build("voter", gen::gen_voter(voter_n), d_wide),
        Case::build("sin", gen::gen_sin(sinw), d_arith),
        Case::build(
            "ac97_ctrl",
            gen::gen_bus_ctrl(bus_groups, 8, 0xac97),
            d_wide,
        ),
        Case::build(
            "vga_lcd",
            gen::gen_video_timing(9, vga_lanes, 0x60a),
            d_wide,
        ),
    ]
}

/// Builds one named case from the suite (for focused runs).
pub fn case_by_name(scale: Scale, name: &str) -> Option<Case> {
    suite(scale).into_iter().find(|c| c.name.starts_with(name))
}

/// The standalone SAT-sweeping baseline configuration ("ABC &cec" role),
/// with a wall-clock cap standing in for the paper's 122-day timeout.
pub fn baseline_sat_config(budget: Duration) -> SweepConfig {
    SweepConfig {
        sim_words: 8,
        conflicts_per_pair: 2_000,
        conflicts_per_po: 200_000,
        max_rounds: 24,
        seed: 0xabc,
        wall_budget: Some(budget),
    }
}

/// The portfolio ("commercial checker" role) configuration.
pub fn portfolio_config(budget: Duration) -> PortfolioConfig {
    PortfolioConfig {
        // BDD-engine proxy. Two knobs bound where the portfolio's global
        // engine applies: PO support (BDD variable count) and cone size
        // (construction effort). No single setting reproduces every
        // Conformal column: raising `po_cone_cap` to usize::MAX makes the
        // portfolio competitive on log2 (as Conformal is in the paper)
        // but also lets it win sin/square (which Conformal loses). The
        // committed table2.txt uses the conservative cone cap.
        po_support_cap: 16,
        po_cone_cap: 3000,
        memory_words: 1 << 22,
        sim_words: 8,
        sweep: baseline_sat_config(budget),
    }
}

/// The combined flow ("GPU engine + ABC" role) configuration.
pub fn combined_config(budget: Duration) -> CombinedConfig {
    CombinedConfig {
        engine: EngineConfig::scaled(),
        sat: baseline_sat_config(budget),
        ec_transfer: false,
        prover: parsweep_core::ProverMode::Sequential,
    }
}

/// Geometric mean of speedup factors.
pub fn geomean(factors: &[f64]) -> f64 {
    if factors.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = factors.iter().map(|f| f.max(1e-12).ln()).sum();
    (log_sum / factors.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sound(case: &Case, patterns: usize) {
        assert_eq!(
            case.original.num_pis(),
            case.optimized.num_pis(),
            "{}",
            case.name
        );
        let mut rng = parsweep_aig::random::SplitMix64::new(5);
        for _ in 0..patterns {
            let bits: Vec<bool> = (0..case.miter.num_pis()).map(|_| rng.bool()).collect();
            assert!(
                !case.miter.eval(&bits).iter().any(|&x| x),
                "{}: miter fired — resyn2 broke equivalence",
                case.name
            );
        }
    }

    #[test]
    fn small_cases_are_sound() {
        // A fast subset covering the arithmetic and control generators;
        // `full_tiny_suite_is_sound` covers all nine (slow in debug).
        check_sound(&Case::build("multiplier", gen::gen_multiplier(5), 1), 16);
        check_sound(&Case::build("voter", gen::gen_voter(9), 1), 16);
        check_sound(
            &Case::build("vga_lcd", gen::gen_video_timing(6, 2, 0x60a), 1),
            16,
        );
    }

    #[test]
    #[ignore = "slow in debug builds; run with --ignored or in release"]
    fn full_tiny_suite_is_sound() {
        let cases = suite(Scale::Tiny);
        assert_eq!(cases.len(), 9);
        for case in &cases {
            check_sound(case, 16);
        }
    }

    #[test]
    fn doubling_suffix_in_name() {
        let c = Case::build("x", gen::gen_multiplier(3), 2);
        assert_eq!(c.name, "x_2xd");
        assert_eq!(c.original.num_pis(), 4 * 6);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn case_by_name_finds_prefix() {
        assert!(case_by_name(Scale::Tiny, "voter").is_some());
        assert!(case_by_name(Scale::Tiny, "nonexistent").is_none());
    }

    #[test]
    fn scale_parse_covers_all_presets() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
    }
}

//! Arithmetic circuit building blocks used by the benchmark generators:
//! adders, multipliers, squarers, restoring square root, comparators and
//! population counts.

use parsweep_aig::{Aig, Lit};

/// Adds two equal-width bit vectors with a ripple-carry adder; returns the
/// sum bits plus the final carry.
pub fn ripple_add(aig: &mut Aig, a: &[Lit], b: &[Lit], carry_in: Lit) -> Vec<Lit> {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = carry_in;
    for i in 0..a.len() {
        let axb = aig.xor(a[i], b[i]);
        out.push(aig.xor(axb, carry));
        carry = aig.maj3(a[i], b[i], carry);
    }
    out.push(carry);
    out
}

/// Adds with a carry-lookahead-flavoured structure (different shape from
/// [`ripple_add`], same function) — useful for equivalence benchmarks.
pub fn cla_add(aig: &mut Aig, a: &[Lit], b: &[Lit], carry_in: Lit) -> Vec<Lit> {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    let n = a.len();
    let mut generate = Vec::with_capacity(n);
    let mut propagate = Vec::with_capacity(n);
    for i in 0..n {
        generate.push(aig.and(a[i], b[i]));
        propagate.push(aig.xor(a[i], b[i]));
    }
    // Carries expanded explicitly: c[i+1] = g[i] | p[i] & c[i].
    let mut carries = Vec::with_capacity(n + 1);
    carries.push(carry_in);
    for i in 0..n {
        let pc = aig.and(propagate[i], carries[i]);
        carries.push(aig.or(generate[i], pc));
    }
    let mut out = Vec::with_capacity(n + 1);
    for i in 0..n {
        out.push(aig.xor(propagate[i], carries[i]));
    }
    out.push(carries[n]);
    out
}

/// Subtracts `b` from `a` (two's complement); returns difference bits and
/// the *borrow-free* flag (1 when `a >= b`).
pub fn subtract(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
    let mut sum = ripple_add(aig, a, &nb, Lit::TRUE);
    let carry = sum.pop().expect("carry");
    (sum, carry)
}

/// An array multiplier over two equal-width operands; returns the
/// `2 * width` product bits.
pub fn multiplier(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    let w = a.len();
    let mut acc: Vec<Lit> = vec![Lit::FALSE; 2 * w];
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = Lit::FALSE;
        for (j, &bj) in b.iter().enumerate() {
            let pp = aig.and(ai, bj);
            let s1 = aig.xor(acc[i + j], pp);
            let sum = aig.xor(s1, carry);
            carry = aig.maj3(acc[i + j], pp, carry);
            acc[i + j] = sum;
        }
        // Propagate the final carry up the accumulator.
        let mut k = i + w;
        while carry != Lit::FALSE && k < 2 * w {
            let s = aig.xor(acc[k], carry);
            carry = aig.and(acc[k], carry);
            acc[k] = s;
            k += 1;
        }
    }
    acc
}

/// A squarer: `x * x` with the symmetric partial products shared.
pub fn squarer(aig: &mut Aig, x: &[Lit]) -> Vec<Lit> {
    let w = x.len();
    let mut acc: Vec<Lit> = vec![Lit::FALSE; 2 * w];
    // x^2 = sum_i x_i 2^{2i} + sum_{i<j} x_i x_j 2^{i+j+1}.
    let add_bit = |aig: &mut Aig, acc: &mut Vec<Lit>, mut bit: Lit, mut pos: usize| {
        while bit != Lit::FALSE && pos < 2 * w {
            let s = aig.xor(acc[pos], bit);
            bit = aig.and(acc[pos], bit);
            acc[pos] = s;
            pos += 1;
        }
    };
    for i in 0..w {
        add_bit(aig, &mut acc, x[i], 2 * i);
        for j in i + 1..w {
            let pp = aig.and(x[i], x[j]);
            add_bit(aig, &mut acc, pp, i + j + 1);
        }
    }
    acc
}

/// Restoring integer square root of a `2 * w`-bit radicand; returns the
/// `w`-bit root. Deep and strongly reconvergent, like the EPFL `sqrt`.
pub fn isqrt(aig: &mut Aig, x: &[Lit]) -> Vec<Lit> {
    assert!(x.len().is_multiple_of(2), "radicand width must be even");
    let w = x.len() / 2;
    // Digit-by-digit (restoring) method over a widened remainder.
    let rw = w + 2;
    let mut remainder: Vec<Lit> = vec![Lit::FALSE; rw];
    let mut root: Vec<Lit> = Vec::new(); // most-significant first
    for step in 0..w {
        // Shift two next radicand bits into the remainder.
        let hi = x[2 * (w - 1 - step) + 1];
        let lo = x[2 * (w - 1 - step)];
        let mut shifted = vec![lo, hi];
        shifted.extend(remainder.iter().take(rw - 2).copied());
        // Trial subtrahend: (root << 2) | 01.
        let mut trial = vec![Lit::TRUE, Lit::FALSE];
        trial.extend(root.iter().rev().take(rw - 2).copied());
        trial.resize(rw, Lit::FALSE);
        let (diff, fits) = subtract(aig, &shifted, &trial);
        // Keep the difference when it fits, else restore.
        let mut next = Vec::with_capacity(rw);
        for k in 0..rw {
            next.push(aig.mux(fits, diff[k], shifted[k]));
        }
        remainder = next;
        root.push(fits);
    }
    root.reverse();
    root
}

/// Population count of the inputs as a binary number (adder tree).
pub fn popcount(aig: &mut Aig, xs: &[Lit]) -> Vec<Lit> {
    if xs.is_empty() {
        return vec![Lit::FALSE];
    }
    if xs.len() == 1 {
        return vec![xs[0]];
    }
    let mid = xs.len() / 2;
    let mut left = popcount(aig, &xs[..mid]);
    let mut right = popcount(aig, &xs[mid..]);
    let width = left.len().max(right.len());
    left.resize(width, Lit::FALSE);
    right.resize(width, Lit::FALSE);
    ripple_add(aig, &left, &right, Lit::FALSE)
}

/// `a > b` comparator over equal-width unsigned vectors.
pub fn greater_than(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    let mut result = Lit::FALSE;
    for i in 0..a.len() {
        // From LSB to MSB: result = (a_i & !b_i) | (a_i == b_i) & result.
        let win = aig.and(a[i], !b[i]);
        let eq = aig.xnor(a[i], b[i]);
        let keep = aig.and(eq, result);
        result = aig.or(win, keep);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| v >> i & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn ripple_and_cla_add_match_arithmetic() {
        let w = 5;
        let mut aig = Aig::new();
        let a = aig.add_inputs(w);
        let b = aig.add_inputs(w);
        let r = ripple_add(&mut aig, &a, &b, Lit::FALSE);
        let c = cla_add(&mut aig, &a, &b, Lit::FALSE);
        for lit in r.iter().chain(&c) {
            aig.add_po(*lit);
        }
        for av in 0..1u64 << w {
            for bv in (0..1u64 << w).step_by(3) {
                let mut inputs = to_bits(av, w);
                inputs.extend(to_bits(bv, w));
                let out = aig.eval(&inputs);
                let rv = from_bits(&out[..w + 1]);
                let cv = from_bits(&out[w + 1..]);
                assert_eq!(rv, av + bv);
                assert_eq!(cv, av + bv);
            }
        }
    }

    #[test]
    fn multiplier_matches_arithmetic() {
        let w = 4;
        let mut aig = Aig::new();
        let a = aig.add_inputs(w);
        let b = aig.add_inputs(w);
        let p = multiplier(&mut aig, &a, &b);
        for lit in p {
            aig.add_po(lit);
        }
        for av in 0..1u64 << w {
            for bv in 0..1u64 << w {
                let mut inputs = to_bits(av, w);
                inputs.extend(to_bits(bv, w));
                assert_eq!(from_bits(&aig.eval(&inputs)), av * bv, "{av}*{bv}");
            }
        }
    }

    #[test]
    fn squarer_matches_multiplier() {
        let w = 5;
        let mut aig = Aig::new();
        let x = aig.add_inputs(w);
        let sq = squarer(&mut aig, &x);
        for lit in sq {
            aig.add_po(lit);
        }
        for v in 0..1u64 << w {
            assert_eq!(from_bits(&aig.eval(&to_bits(v, w))), v * v, "{v}^2");
        }
    }

    #[test]
    fn isqrt_matches_integer_sqrt() {
        let w = 4; // 8-bit radicand
        let mut aig = Aig::new();
        let x = aig.add_inputs(2 * w);
        let root = isqrt(&mut aig, &x);
        assert_eq!(root.len(), w);
        for lit in root {
            aig.add_po(lit);
        }
        for v in 0..1u64 << (2 * w) {
            let expect = (v as f64).sqrt().floor() as u64;
            assert_eq!(
                from_bits(&aig.eval(&to_bits(v, 2 * w))),
                expect,
                "sqrt({v})"
            );
        }
    }

    #[test]
    fn popcount_counts() {
        let n = 9;
        let mut aig = Aig::new();
        let xs = aig.add_inputs(n);
        let cnt = popcount(&mut aig, &xs);
        for lit in cnt {
            aig.add_po(lit);
        }
        for v in 0..1u64 << n {
            let bits = to_bits(v, n);
            assert_eq!(
                from_bits(&aig.eval(&bits)),
                v.count_ones() as u64,
                "popcount({v:b})"
            );
        }
    }

    #[test]
    fn comparator_matches() {
        let w = 5;
        let mut aig = Aig::new();
        let a = aig.add_inputs(w);
        let b = aig.add_inputs(w);
        let gt = greater_than(&mut aig, &a, &b);
        aig.add_po(gt);
        for av in 0..1u64 << w {
            for bv in (0..1u64 << w).step_by(5) {
                let mut inputs = to_bits(av, w);
                inputs.extend(to_bits(bv, w));
                assert_eq!(aig.eval(&inputs), vec![av > bv], "{av} > {bv}");
            }
        }
    }

    #[test]
    fn subtract_detects_order() {
        let w = 4;
        let mut aig = Aig::new();
        let a = aig.add_inputs(w);
        let b = aig.add_inputs(w);
        let (diff, fits) = subtract(&mut aig, &a, &b);
        for lit in diff {
            aig.add_po(lit);
        }
        aig.add_po(fits);
        for av in 0..1u64 << w {
            for bv in 0..1u64 << w {
                let mut inputs = to_bits(av, w);
                inputs.extend(to_bits(bv, w));
                let out = aig.eval(&inputs);
                let fits_v = out[w];
                assert_eq!(fits_v, av >= bv, "{av} - {bv}");
                if fits_v {
                    assert_eq!(from_bits(&out[..w]), av - bv);
                }
            }
        }
    }
}

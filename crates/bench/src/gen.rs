//! Benchmark circuit generators mirroring the families of the paper's
//! evaluation (EPFL arithmetic + IWLS 2005 control designs), at
//! configurable laptop scale.
//!
//! Each generator produces a complete combinational design; the harness
//! then optimizes it with `resyn2`, enlarges both versions with `double`
//! (the paper's `nxd` suffix) and miters them.

use parsweep_aig::random::SplitMix64;
use parsweep_aig::{Aig, Lit};

use crate::arith::{
    cla_add, greater_than, isqrt, multiplier, popcount, ripple_add, squarer, subtract,
};

/// `multiplier`-class benchmark: a `w x w` array multiplier.
pub fn gen_multiplier(w: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs(w);
    let b = aig.add_inputs(w);
    let p = multiplier(&mut aig, &a, &b);
    for lit in p {
        aig.add_po(lit);
    }
    aig
}

/// `square`-class benchmark: a `w`-bit squarer.
pub fn gen_square(w: usize) -> Aig {
    let mut aig = Aig::new();
    let x = aig.add_inputs(w);
    let sq = squarer(&mut aig, &x);
    for lit in sq {
        aig.add_po(lit);
    }
    aig
}

/// `sqrt`-class benchmark: restoring integer square root of a `2w`-bit
/// radicand. Very deep with a long mux-chain dependency, like EPFL `sqrt`.
pub fn gen_sqrt(w: usize) -> Aig {
    let mut aig = Aig::new();
    let x = aig.add_inputs(2 * w);
    let root = isqrt(&mut aig, &x);
    for lit in root {
        aig.add_po(lit);
    }
    aig
}

/// `hyp`-class benchmark: `floor(sqrt(a^2 + b^2))` — squarers feeding an
/// adder feeding a deep square root, like EPFL `hyp`.
pub fn gen_hyp(w: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs(w);
    let b = aig.add_inputs(w);
    let a2 = squarer(&mut aig, &a);
    let b2 = squarer(&mut aig, &b);
    let mut sum = ripple_add(&mut aig, &a2, &b2, Lit::FALSE); // 2w + 1 bits
    sum.push(Lit::FALSE); // pad to even width 2w + 2
    let root = isqrt(&mut aig, &sum);
    for lit in root {
        aig.add_po(lit);
    }
    aig
}

/// `log2`-class benchmark: integer+fraction binary logarithm by the
/// classic normalize-then-repeatedly-square method. Few PIs, a chain of
/// `frac_bits` squarers — extremely hard for SAT, one-shot provable by
/// exhaustive PO simulation (like EPFL `log2` with its 32 inputs).
pub fn gen_log2(w: usize, frac_bits: usize) -> Aig {
    let mut aig = Aig::new();
    let x = aig.add_inputs(w);

    // Integer part: index of the leading one (priority encoder).
    // found_i = x_{w-1} | ... | x_i ; lead_i = x_i & !found_{i+1}.
    let mut lead = vec![Lit::FALSE; w];
    let mut found = Lit::FALSE;
    for (i, &xi) in x.iter().enumerate().rev() {
        lead[i] = aig.and(xi, !found);
        found = aig.or(found, xi);
    }
    // Integer log bits: OR of lead_i over positions with bit k set.
    let int_bits = w.next_power_of_two().trailing_zeros() as usize;
    for k in 0..int_bits {
        let terms: Vec<Lit> = lead
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> k & 1 == 1)
            .map(|(_, &l)| l)
            .collect();
        let bit = aig.or_all(terms);
        aig.add_po(bit);
    }

    // Normalize x to 1.ffff: barrel-shift left so the leading one lands
    // at the top. mantissa_j = OR_i lead_i & x_{i - (w-1-j)}.
    let mut mantissa: Vec<Lit> = Vec::with_capacity(w);
    for j in 0..w {
        // Bit j of the normalized value (MSB at j = w-1).
        let mut terms = Vec::new();
        for (i, &lead_i) in lead.iter().enumerate() {
            let shift = (w - 1) - i; // amount of left shift when lead = i
            if j >= shift {
                let src = j - shift;
                let t = aig.and(lead_i, x[src]);
                terms.push(t);
            }
        }
        mantissa.push(aig.or_all(terms));
    }

    // Fraction bits: repeatedly square the mantissa (fixed point with the
    // integer bit at the top); the overflow bit is the next fraction bit.
    let mut m = mantissa;
    for _ in 0..frac_bits {
        let sq = squarer(&mut aig, &m); // 2w bits; value in [1, 4)
        let overflow = sq[2 * w - 1]; // >= 2 ?
        aig.add_po(overflow);
        // Renormalize: if overflow, shift right by one.
        let mut next = Vec::with_capacity(w);
        for j in 0..w {
            let hi = sq[w + j]; // already-shifted bit when overflow
            let lo = sq[w + j - 1]; // unshifted bit
            next.push(aig.mux(overflow, hi, lo));
        }
        m = next;
    }
    aig
}

/// `sin`-class benchmark: odd-polynomial fixed-point approximation
/// `x - x^3 c3 + x^5 c5` over a `w`-bit argument; multiplier-heavy with
/// few PIs, like EPFL `sin`.
pub fn gen_sin(w: usize) -> Aig {
    let mut aig = Aig::new();
    let x = aig.add_inputs(w);
    // x^2, truncated back to w bits (fixed point: keep the top half).
    let x2_full = squarer(&mut aig, &x);
    let x2: Vec<Lit> = x2_full[w..].to_vec();
    // x^3 = x * x^2 truncated.
    let x3_full = multiplier(&mut aig, &x, &x2);
    let x3: Vec<Lit> = x3_full[w..].to_vec();
    // x^5 = x^3 * x^2 truncated.
    let x5_full = multiplier(&mut aig, &x3, &x2);
    let x5: Vec<Lit> = x5_full[w..].to_vec();
    // c3 ~ 1/6: x^3 / 8 + x^3 / 32 (shift-add approximation).
    let shr = |v: &[Lit], k: usize| -> Vec<Lit> {
        let mut out: Vec<Lit> = v[k.min(v.len())..].to_vec();
        out.resize(v.len(), Lit::FALSE);
        out
    };
    let t3a = shr(&x3, 3);
    let t3b = shr(&x3, 5);
    let mut c3 = ripple_add(&mut aig, &t3a, &t3b, Lit::FALSE);
    c3.pop();
    // c5 ~ 1/128.
    let c5 = shr(&x5, 7);
    // result = x - c3 + c5 (saturating to w bits; borrow ignored like a
    // wrapped fixed-point implementation).
    let (minus, _) = subtract(&mut aig, &x, &c3);
    let mut result = cla_add(&mut aig, &minus, &c5, Lit::FALSE);
    result.pop();
    for lit in result {
        aig.add_po(lit);
    }
    aig
}

/// `voter`-class benchmark: majority of `n` (odd) inputs via a population
/// count and comparison, like EPFL `voter`.
///
/// # Panics
///
/// Panics if `n` is even.
pub fn gen_voter(n: usize) -> Aig {
    assert!(n % 2 == 1, "voter needs an odd input count");
    let mut aig = Aig::new();
    let xs = aig.add_inputs(n);
    let count = popcount(&mut aig, &xs);
    // majority <=> count > floor(n/2): compare against the constant.
    let half = (n / 2) as u64;
    let threshold: Vec<Lit> = (0..count.len())
        .map(|i| {
            if half >> i & 1 == 1 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect();
    let maj = greater_than(&mut aig, &count, &threshold);
    aig.add_po(maj);
    aig
}

/// `ac97_ctrl`-class benchmark: a wide, shallow bus-controller-like
/// network — many register groups, each with select-muxed data, enables
/// and small decoded status bits. Huge PI/PO counts, tiny PO supports.
pub fn gen_bus_ctrl(groups: usize, data_width: usize, seed: u64) -> Aig {
    let mut rng = SplitMix64::new(seed);
    let mut aig = Aig::new();
    let sel = aig.add_inputs(3);
    let enable = aig.add_inputs(2);
    let mut pos = Vec::new();
    for _ in 0..groups {
        let data = aig.add_inputs(data_width);
        let alt = aig.add_inputs(data_width);
        // A per-group write-enable decode.
        let s0 = sel[rng.below(3)];
        let s1 = sel[rng.below(3)];
        let en0 = aig.and(enable[0], s0.xor(rng.bool()));
        let en = aig.and(en0, s1.xor(rng.bool()));
        for j in 0..data_width {
            // out_j = en ? data_j : alt_j, occasionally XOR-ed with a
            // neighbouring bit (parity-style status logic).
            let base = aig.mux(en, data[j], alt[j]);
            let out = if rng.below(4) == 0 {
                let k = rng.below(data_width);
                aig.xor(base, alt[k])
            } else {
                base
            };
            pos.push(out);
        }
        // Group status: AND/OR reductions over the data byte.
        let all = aig.and_all(data.iter().copied());
        let any = aig.or_all(alt.iter().copied());
        pos.push(all);
        pos.push(any);
    }
    for po in pos {
        aig.add_po(po);
    }
    aig
}

/// `vga_lcd`-class benchmark: video-timing next-state logic — horizontal
/// and vertical counters with comparators against timing constants and
/// sync-pulse outputs. Shallow with small-to-moderate PO supports.
pub fn gen_video_timing(counter_bits: usize, lanes: usize, seed: u64) -> Aig {
    let mut rng = SplitMix64::new(seed);
    let mut aig = Aig::new();
    let mut pos = Vec::new();
    for _ in 0..lanes {
        let h = aig.add_inputs(counter_bits);
        let v = aig.add_inputs(counter_bits);
        let en = aig.add_inputs(1)[0];
        // h_next = h + 1 (when enabled), wrapping at a constant.
        let one: Vec<Lit> = std::iter::once(Lit::TRUE)
            .chain(std::iter::repeat(Lit::FALSE))
            .take(counter_bits)
            .collect();
        let mut h_inc = ripple_add(&mut aig, &h, &one, Lit::FALSE);
        h_inc.pop();
        let hmax = (1u64 << counter_bits) - 1 - rng.below(7) as u64;
        let at_max: Vec<Lit> = (0..counter_bits)
            .map(|i| h[i].xor(hmax >> i & 1 == 0))
            .collect();
        let wrap = aig.and_all(at_max.iter().copied());
        let mut h_next = Vec::with_capacity(counter_bits);
        for i in 0..counter_bits {
            let inc = aig.mux(wrap, Lit::FALSE, h_inc[i]);
            h_next.push(aig.mux(en, inc, h[i]));
        }
        // v_next = v + wrap.
        let wrap_vec: Vec<Lit> = std::iter::once(wrap)
            .chain(std::iter::repeat(Lit::FALSE))
            .take(counter_bits)
            .collect();
        let mut v_next = cla_add(&mut aig, &v, &wrap_vec, Lit::FALSE);
        v_next.pop();
        // Sync pulses: window comparators against constants.
        let lo = rng.below(1 << (counter_bits - 1)) as u64;
        let hi = lo + 1 + rng.below(1 << (counter_bits - 1)) as u64;
        let lo_vec: Vec<Lit> = (0..counter_bits)
            .map(|i| {
                if lo >> i & 1 == 1 {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            })
            .collect();
        let hi_vec: Vec<Lit> = (0..counter_bits)
            .map(|i| {
                if hi >> i & 1 == 1 {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            })
            .collect();
        let above = greater_than(&mut aig, &h, &lo_vec);
        let below = greater_than(&mut aig, &hi_vec, &h);
        let hsync = aig.and(above, below);
        pos.extend(h_next);
        pos.extend(v_next);
        pos.push(hsync);
    }
    for po in pos {
        aig.add_po(po);
    }
    aig
}

/// `max`-class benchmark (EPFL `max`): the maximum of four `w`-bit
/// numbers via a comparator-mux tree.
pub fn gen_max(w: usize) -> Aig {
    let mut aig = Aig::new();
    let nums: Vec<Vec<Lit>> = (0..4).map(|_| aig.add_inputs(w)).collect();
    let pick_max = |aig: &mut Aig, a: &[Lit], b: &[Lit]| -> Vec<Lit> {
        let gt = greater_than(aig, a, b);
        a.iter().zip(b).map(|(&x, &y)| aig.mux(gt, x, y)).collect()
    };
    let m01 = pick_max(&mut aig, &nums[0], &nums[1]);
    let m23 = pick_max(&mut aig, &nums[2], &nums[3]);
    let m = pick_max(&mut aig, &m01, &m23);
    for bit in m {
        aig.add_po(bit);
    }
    aig
}

/// A small ALU slice: op-select between add, and, or, xor over two
/// `w`-bit operands — the mixed arithmetic/control shape of datapath
/// blocks (extra workload family beyond the paper's nine).
pub fn gen_alu(w: usize) -> Aig {
    let mut aig = Aig::new();
    let op = aig.add_inputs(2);
    let a = aig.add_inputs(w);
    let b = aig.add_inputs(w);
    let mut sum = ripple_add(&mut aig, &a, &b, Lit::FALSE);
    sum.pop();
    for i in 0..w {
        let and = aig.and(a[i], b[i]);
        let or = aig.or(a[i], b[i]);
        let xor = aig.xor(a[i], b[i]);
        // op: 00 = add, 01 = and, 10 = or, 11 = xor.
        let lo = aig.mux(op[0], and, sum[i]);
        let hi = aig.mux(op[0], xor, or);
        let out = aig.mux(op[1], hi, lo);
        aig.add_po(out);
    }
    aig
}

/// A CRC-style XOR network: `rounds` layers of shift-and-conditionally-XOR
/// with a polynomial constant — wide XOR logic with deep linear structure
/// (extra workload family; linear functions are easy for exhaustive
/// simulation but awkward for SOP-based reasoning).
pub fn gen_crc(w: usize, rounds: usize, poly: u64) -> Aig {
    let mut aig = Aig::new();
    let mut state: Vec<Lit> = aig.add_inputs(w);
    let data = aig.add_inputs(rounds);
    for &d in &data {
        let msb = state[w - 1];
        let feedback = aig.xor(msb, d);
        let mut next = Vec::with_capacity(w);
        next.push(feedback);
        for i in 1..w {
            let shifted = state[i - 1];
            next.push(if poly >> i & 1 == 1 {
                aig.xor(shifted, feedback)
            } else {
                shifted
            });
        }
        state = next;
    }
    for bit in state {
        aig.add_po(bit);
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| v >> i & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn hyp_matches_reference() {
        let w = 3;
        let aig = gen_hyp(w);
        for a in 0..1u64 << w {
            for b in 0..1u64 << w {
                let mut inputs = to_bits(a, w);
                inputs.extend(to_bits(b, w));
                let got = from_bits(&aig.eval(&inputs));
                let expect = ((a * a + b * b) as f64).sqrt().floor() as u64;
                assert_eq!(got, expect, "hyp({a},{b})");
            }
        }
    }

    #[test]
    fn log2_integer_part_is_leading_one_index() {
        let w = 8;
        let aig = gen_log2(w, 4);
        let int_bits = w.next_power_of_two().trailing_zeros() as usize;
        for v in 1..1u64 << w {
            let out = aig.eval(&to_bits(v, w));
            let int_part = from_bits(&out[..int_bits]);
            assert_eq!(int_part, 63 - v.leading_zeros() as u64, "log2({v})");
        }
    }

    #[test]
    fn log2_fraction_matches_reference() {
        // Reference: repeated-squaring fraction bits of log2(v).
        let w = 6;
        let frac = 5;
        let aig = gen_log2(w, frac);
        let int_bits = w.next_power_of_two().trailing_zeros() as usize;
        for v in 1..1u64 << w {
            let out = aig.eval(&to_bits(v, w));
            let log2v = (v as f64).log2();
            let frac_ref = log2v - log2v.floor();
            let mut acc = 0.0;
            for k in 0..frac {
                let bit = out[int_bits + k];
                acc += if bit { 0.5f64.powi(k as i32 + 1) } else { 0.0 };
            }
            // The computed fraction must match the reference to within
            // the precision of the truncated mantissa arithmetic.
            assert!(
                (acc - frac_ref).abs() < 0.15,
                "log2({v}): got {acc}, want {frac_ref}"
            );
        }
    }

    #[test]
    fn voter_is_majority() {
        let n = 7;
        let aig = gen_voter(n);
        for v in 0..1u64 << n {
            let bits = to_bits(v, n);
            let expect = v.count_ones() as usize > n / 2;
            assert_eq!(aig.eval(&bits), vec![expect], "voter({v:b})");
        }
    }

    #[test]
    fn sin_is_monotone_early_and_bounded() {
        // The polynomial approximation is sane: result fits in w bits and
        // is 0 at 0.
        let w = 8;
        let aig = gen_sin(w);
        assert_eq!(from_bits(&aig.eval(&to_bits(0, w))), 0);
        // Small arguments: sin(x) ~ x (the cubic term underflows).
        for v in 1..8u64 {
            let got = from_bits(&aig.eval(&to_bits(v, w)));
            assert_eq!(got, v, "sin({v}) small-angle");
        }
    }

    #[test]
    fn control_benchmarks_are_shallow_and_wide() {
        let bus = gen_bus_ctrl(8, 8, 3);
        assert!(bus.depth() <= 16, "depth {}", bus.depth());
        assert!(bus.num_pos() >= 64);
        let vga = gen_video_timing(8, 4, 5);
        assert!(vga.depth() <= 40);
        assert!(vga.num_pis() == 4 * (2 * 8 + 1));
        bus.check_invariants().unwrap();
        vga.check_invariants().unwrap();
    }

    #[test]
    fn max_matches_reference() {
        let w = 3;
        let aig = gen_max(w);
        let mut rng = parsweep_aig::random::SplitMix64::new(4);
        for _ in 0..200 {
            let vals: Vec<u64> = (0..4).map(|_| rng.below(1 << w) as u64).collect();
            let mut inputs = Vec::new();
            for &v in &vals {
                inputs.extend(to_bits(v, w));
            }
            let got = from_bits(&aig.eval(&inputs));
            assert_eq!(got, *vals.iter().max().unwrap(), "max{vals:?}");
        }
    }

    #[test]
    fn sqrt_generator_matches_isqrt() {
        let w = 3;
        let aig = gen_sqrt(w);
        for v in 0..1u64 << (2 * w) {
            let got = from_bits(&aig.eval(&to_bits(v, 2 * w)));
            assert_eq!(got, (v as f64).sqrt().floor() as u64, "sqrt({v})");
        }
    }

    #[test]
    fn alu_ops_match_reference() {
        let w = 4;
        let aig = gen_alu(w);
        for op in 0..4u64 {
            for a in 0..1u64 << w {
                for b in (0..1u64 << w).step_by(3) {
                    let mut inputs = to_bits(op, 2);
                    inputs.extend(to_bits(a, w));
                    inputs.extend(to_bits(b, w));
                    let got = from_bits(&aig.eval(&inputs));
                    let expect = match op {
                        0 => (a + b) & ((1 << w) - 1),
                        1 => a & b,
                        2 => a | b,
                        _ => a ^ b,
                    };
                    assert_eq!(got, expect, "op={op} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn crc_matches_bitwise_reference() {
        let (w, rounds, poly) = (8, 6, 0x07u64); // CRC-8 polynomial x^8+x^2+x+1
        let aig = gen_crc(w, rounds, poly);
        let mut rng = parsweep_aig::random::SplitMix64::new(2);
        for _ in 0..64 {
            let init: u64 = rng.next_u64() & 0xFF;
            let data: u64 = rng.next_u64() & 0x3F;
            let mut inputs = to_bits(init, w);
            inputs.extend(to_bits(data, rounds));
            let got = from_bits(&aig.eval(&inputs));
            // Reference software CRC step.
            let mut state = init;
            for r in 0..rounds {
                let d = data >> r & 1;
                let msb = state >> (w - 1) & 1;
                let fb = msb ^ d;
                state = (state << 1) & ((1 << w) - 1);
                if fb == 1 {
                    state ^= poly & ((1 << w) - 1);
                    state |= 1; // feedback into bit 0 (poly bit 0 implied)
                }
            }
            assert_eq!(got, state, "init={init:02x} data={data:02x}");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = gen_bus_ctrl(4, 8, 9);
        let b = gen_bus_ctrl(4, 8, 9);
        assert_eq!(a.num_nodes(), b.num_nodes());
        let v1 = gen_video_timing(6, 2, 1);
        let v2 = gen_video_timing(6, 2, 1);
        assert_eq!(v1.num_nodes(), v2.num_nodes());
    }
}

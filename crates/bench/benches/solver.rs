//! Micro-bench: the CDCL solver on classic hard instances and on
//! miter-style equivalence probes.

use criterion::{criterion_group, criterion_main, Criterion};
use parsweep_aig::miter;
use parsweep_bench::gen::{gen_multiplier, gen_square};
use parsweep_sat::{CnfEncoder, SatLit, SatVar, Solver};
use parsweep_synth::resyn_light;

fn php(n: usize) -> Solver {
    // n pigeons into n-1 holes (UNSAT).
    let mut s = Solver::new();
    let mut x = vec![vec![SatVar::new(0); n - 1]; n];
    for row in x.iter_mut() {
        for slot in row.iter_mut() {
            *slot = s.new_var();
        }
    }
    for row in &x {
        let clause: Vec<SatLit> = row.iter().map(|v| v.pos()).collect();
        s.add_clause(&clause);
    }
    #[allow(clippy::needless_range_loop)]
    for h in 0..n - 1 {
        for p1 in 0..n {
            for p2 in p1 + 1..n {
                s.add_clause(&[x[p1][h].neg(), x[p2][h].neg()]);
            }
        }
    }
    s
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);

    group.bench_function("php7_unsat", |b| {
        b.iter(|| {
            let mut s = php(7);
            s.solve(&[])
        })
    });

    // Miter PO probe: multiplier vs its optimized self.
    let a = gen_multiplier(6);
    let b2 = resyn_light(&a);
    let m = miter(&a, &b2).unwrap();
    group.bench_function("mult6_po_proofs", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let mut enc = CnfEncoder::new();
            let mut unsat = 0;
            for &po in m.pos() {
                if po == parsweep_aig::Lit::FALSE {
                    continue;
                }
                let sp = enc.encode(&m, po, &mut solver);
                if solver.solve(&[sp]) == parsweep_sat::SolveResult::Unsat {
                    unsat += 1;
                }
            }
            unsat
        })
    });

    let sq = gen_square(8);
    let sq_opt = resyn_light(&sq);
    let msq = miter(&sq, &sq_opt).unwrap();
    group.bench_function("square8_po_proofs", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let mut enc = CnfEncoder::new();
            for &po in msq.pos() {
                if po == parsweep_aig::Lit::FALSE {
                    continue;
                }
                let sp = enc.encode(&msq, po, &mut solver);
                let _ = solver.solve(&[sp]);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);

//! Micro-bench: exhaustive-simulation throughput of the window checker
//! (Algorithm 1), including the effect of window merging (§III-B3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use parsweep_aig::Var;
use parsweep_bench::gen::gen_multiplier;
use parsweep_core::EcManager;
use parsweep_par::Executor;
use parsweep_sim::{check_windows, merge_windows, PairCheck, Patterns, Window};

fn build_windows() -> (parsweep_aig::Aig, Vec<Window>) {
    let aig = gen_multiplier(8);
    let exec = Executor::with_threads(1);
    let patterns = Patterns::random(aig.num_pis(), 8, 42);
    let ec = EcManager::from_patterns(&aig, &exec, &patterns);
    let supports = aig.bounded_supports(12);
    let mut windows = Vec::new();
    for pair in ec.pairs(&aig) {
        let (Some(sa), Some(sb)) = (
            supports[pair.a.index()].vars(),
            supports[pair.b.index()].vars(),
        ) else {
            continue;
        };
        let mut union: Vec<Var> = sa.iter().chain(sb).copied().collect();
        union.sort_unstable();
        union.dedup();
        if union.len() > 12 {
            continue;
        }
        if let Some(w) = Window::for_pair(&aig, pair, union) {
            windows.push(w);
        }
    }
    // Add per-PO constant-checking windows for volume.
    for &po in aig.pos() {
        if po.var().is_const() {
            continue;
        }
        if let Some(sup) = supports[po.var().index()].vars() {
            let pair = PairCheck {
                a: Var::FALSE,
                b: po.var(),
                complement: po.is_complemented(),
            };
            if let Some(w) = Window::for_pair(&aig, pair, sup.to_vec()) {
                windows.push(w);
            }
        }
    }
    (aig, windows)
}

fn bench_exhaustive(c: &mut Criterion) {
    let exec = Executor::with_threads(1);
    let (aig, windows) = build_windows();
    let mut group = c.benchmark_group("exhaustive_sim");
    group.sample_size(10);

    group.bench_function("unmerged", |b| {
        b.iter_batched(
            || windows.clone(),
            |w| check_windows(&aig, &exec, &w, 1 << 20),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("merged_ks12", |b| {
        b.iter_batched(
            || merge_windows(windows.clone(), 12),
            |w| check_windows(&aig, &exec, &w, 1 << 20),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("tight_memory_multi_round", |b| {
        b.iter_batched(
            || windows.clone(),
            |w| {
                let entries: usize = w.iter().map(|x| x.num_entries()).sum();
                check_windows(&aig, &exec, &w, entries.max(1))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_exhaustive);
criterion_main!(benches);

//! Head-to-head bench: the simulation-based engine vs SAT sweeping vs the
//! combined flow on fixed miters (the shape behind Table II).

use criterion::{criterion_group, criterion_main, Criterion};
use parsweep_aig::{miter, Aig};
use parsweep_bench::gen::{gen_bus_ctrl, gen_multiplier};
use parsweep_core::{combined_check, sim_sweep, CombinedConfig, EngineConfig};
use parsweep_par::Executor;
use parsweep_sat::{sat_sweep, SweepConfig};
use parsweep_synth::resyn_light;

fn cases() -> Vec<(&'static str, Aig)> {
    let mult = gen_multiplier(7);
    let mult_m = miter(&mult, &resyn_light(&mult)).unwrap();
    let bus = gen_bus_ctrl(8, 8, 0xac);
    let bus_m = miter(&bus, &resyn_light(&bus)).unwrap();
    vec![("multiplier7", mult_m), ("bus_ctrl", bus_m)]
}

fn bench_engines(c: &mut Criterion) {
    let exec = Executor::with_threads(1);
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    for (name, m) in cases() {
        group.bench_function(format!("{name}_sim_engine"), |b| {
            b.iter(|| sim_sweep(&m, &exec, &EngineConfig::scaled()))
        });
        group.bench_function(format!("{name}_sat_sweep"), |b| {
            b.iter(|| sat_sweep(&m, &exec, &SweepConfig::default()))
        });
        group.bench_function(format!("{name}_combined"), |b| {
            b.iter(|| combined_check(&m, &exec, &CombinedConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);

//! Micro-bench: partial (sampled) simulation throughput — the EC
//! initialization cost of every sweeping round.

use criterion::{criterion_group, criterion_main, Criterion};
use parsweep_bench::gen::{gen_multiplier, gen_voter};
use parsweep_par::Executor;
use parsweep_sim::{signature_classes, simulate, Patterns};

fn bench_partial(c: &mut Criterion) {
    let exec = Executor::with_threads(1);
    let mult = gen_multiplier(10);
    let voter = gen_voter(101);
    let mut group = c.benchmark_group("partial_sim");
    group.sample_size(20);

    for (name, aig) in [("multiplier10", &mult), ("voter101", &voter)] {
        let patterns = Patterns::random(aig.num_pis(), 8, 7);
        group.bench_function(format!("{name}_simulate_512p"), |b| {
            b.iter(|| simulate(aig, &exec, &patterns))
        });
        let sigs = simulate(aig, &exec, &patterns);
        group.bench_function(format!("{name}_classes"), |b| {
            b.iter(|| signature_classes(aig, &sigs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partial);
criterion_main!(benches);

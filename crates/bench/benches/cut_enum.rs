//! Micro-bench: priority-cut enumeration over a whole network with the
//! three Table-I selection passes.

use criterion::{criterion_group, criterion_main, Criterion};
use parsweep_aig::Node;
use parsweep_bench::gen::gen_multiplier;
use parsweep_cut::{enumerate_cuts, select_priority_cuts, Cut, CutParams, CutScorer, Pass};

fn enumerate_network(aig: &parsweep_aig::Aig, pass: Pass, params: CutParams) -> usize {
    let fanouts = aig.fanout_counts();
    let levels = aig.levels();
    let scorer = CutScorer::new(&fanouts, &levels);
    let mut cut_sets: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    for &pi in aig.pis() {
        cut_sets[pi.index()] = vec![Cut::trivial(pi)];
    }
    let mut total = 0;
    for v in aig.and_vars() {
        let Node::And(a, b) = aig.node(v) else {
            unreachable!()
        };
        let cands = enumerate_cuts(
            a,
            b,
            &cut_sets[a.var().index()],
            &cut_sets[b.var().index()],
            params,
        );
        let sel = select_priority_cuts(cands, &scorer, pass, params, None);
        total += sel.len();
        cut_sets[v.index()] = sel;
    }
    total
}

fn bench_cut_enum(c: &mut Criterion) {
    let aig = gen_multiplier(8);
    let mut group = c.benchmark_group("cut_enum");
    group.sample_size(10);
    for pass in Pass::ALL {
        group.bench_function(format!("mult8_{pass:?}"), |b| {
            b.iter(|| enumerate_network(&aig, pass, CutParams { k_l: 8, c: 8 }))
        });
    }
    group.bench_function("mult8_small_cuts_k4", |b| {
        b.iter(|| enumerate_network(&aig, Pass::Fanout, CutParams { k_l: 4, c: 8 }))
    });
    group.finish();
}

criterion_group!(benches, bench_cut_enum);
criterion_main!(benches);

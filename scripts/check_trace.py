#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file produced by parsweep-trace.

Usage: check_trace.py TRACE.json

Checks:
  * the file parses as a JSON array of event objects;
  * every duration-begin (``ph == "B"``) has a matching ``"E"`` on the
    same ``tid``, nested LIFO with matching names;
  * timestamps are monotonically non-decreasing per ``tid``;
  * the trace contains at least one span.

Exits non-zero with a diagnostic on the first violation.
"""

import json
import sys


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_trace.py TRACE.json")
    try:
        with open(sys.argv[1]) as f:
            events = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {sys.argv[1]}: {e}")
    if not isinstance(events, list):
        fail("top level must be a JSON array")

    stacks = {}  # tid -> [names]
    last_ts = {}  # tid -> ts
    spans = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        tid = ev.get("tid")
        name = ev.get("name", "?")
        if ph in ("B", "E", "I"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                fail(f"event {i} ({name}): missing numeric ts")
            if ts < last_ts.get(tid, 0):
                fail(
                    f"event {i} ({name}): ts {ts} goes backwards on tid {tid} "
                    f"(last {last_ts[tid]})"
                )
            last_ts[tid] = ts
        if ph == "B":
            stacks.setdefault(tid, []).append(name)
            spans += 1
        elif ph == "E":
            stack = stacks.get(tid) or []
            if not stack:
                fail(f"event {i} ({name}): E without matching B on tid {tid}")
            top = stack.pop()
            if top != name:
                fail(
                    f"event {i}: E '{name}' does not match open span "
                    f"'{top}' on tid {tid}"
                )
    for tid, stack in stacks.items():
        if stack:
            fail(f"unclosed spans on tid {tid}: {stack}")
    if spans == 0:
        fail("trace contains no spans")
    print(f"check_trace: OK — {spans} spans over {len(last_ts)} threads")


if __name__ == "__main__":
    main()

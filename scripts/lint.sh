#!/usr/bin/env bash
# Static + dynamic hardening gate, the same sequence CI runs:
#   1. formatting            cargo fmt --all -- --check
#   2. lints                 cargo clippy --workspace --all-targets -- -D warnings
#                            (workspace lints deny unsafe_op_in_unsafe_fn and
#                             undocumented unsafe blocks)
#   3. tier-1 build + tests  cargo build --release && cargo test
#   4. kernel sanitizer      parsweep-par suite with the `sanitize` feature,
#                            then the engine-facing suites with every executor
#                            forced into sanitizing mode (racecheck analogue)
#   5. static effect checks  PARSWEEP_SANITIZE=all cross-checks every declared
#                            launch against the dynamic sanitizer: statically
#                            verified footprints must cover every real access
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -D warnings (trace feature)"
cargo clippy --workspace --all-targets --features trace -- -D warnings

echo "==> tier-1 build + test"
cargo build --release
cargo test -q

echo "==> semantic cache + persistence acceptance (explicit)"
cargo test -p parsweep-svc --test service_integration -q semantic
cargo test -p parsweep-svc --test service_integration -q persisted
cargo test -p parsweep-svc --lib -q semantic
cargo test -p parsweep-svc --lib -q memo

echo "==> sanitizer-enabled tests (feature)"
cargo test -p parsweep-par --features sanitize -q
cargo test -p parsweep-svc --features sanitize -q
cargo test -p parsweep-net --features sanitize -q

echo "==> trace-enabled tests (feature)"
cargo test -p parsweep-trace --features enabled -q
cargo test -p parsweep-svc --features trace -q
cargo test -p parsweep-net --features trace -q

echo "==> sanitizer-enabled tests (PARSWEEP_SANITIZE=1)"
PARSWEEP_SANITIZE=1 cargo test -p parsweep-par -p parsweep-sim -p parsweep-sat -p parsweep-core -p parsweep-svc -p parsweep-net -q
PARSWEEP_SANITIZE=1 cargo test --test sanitizer_engine --test edge_cases -q

echo "==> static effect cross-check (PARSWEEP_SANITIZE=all)"
cargo test -p parsweep-par --test effects_static --test effects_props -q
PARSWEEP_SANITIZE=all cargo test -p parsweep-par -p parsweep-sim -p parsweep-cut -q
PARSWEEP_SANITIZE=all cargo test --test sanitizer_engine -q

echo "lint.sh: all green"

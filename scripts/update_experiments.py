#!/usr/bin/env python3
"""Splices the harness outputs (table2.txt, fig6.txt, fig7.txt,
ablation.txt) into EXPERIMENTS.md, replacing the PLACEHOLDER_* markers.

Usage: python3 scripts/update_experiments.py
"""

import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent

def splice(marker: str, path: pathlib.Path, text: str) -> str:
    content = path.read_text().rstrip() if path.exists() else f"(missing: {path.name})"
    return text.replace(marker, content)

def main() -> None:
    exp = ROOT / "EXPERIMENTS.md"
    text = exp.read_text()
    text = splice("PLACEHOLDER_TABLE2", ROOT / "table2.txt", text)
    text = splice("PLACEHOLDER_FIG6", ROOT / "fig6.txt", text)
    text = splice("PLACEHOLDER_FIG7", ROOT / "fig7.txt", text)
    text = splice("PLACEHOLDER_ABLATION", ROOT / "ablation.txt", text)
    text = splice("PLACEHOLDER_SCALING", ROOT / "scaling.txt", text)
    exp.write_text(text)
    print("EXPERIMENTS.md updated")

if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Print per-field deltas between two benchmark JSON files.

Usage: bench_delta.py PREV.json CURR.json

Walks both objects recursively; for every numeric leaf present in both,
prints ``path: prev -> curr (delta, pct)``. Fields present in only one
file are listed as added/removed. Exits 0 always — the delta is a report,
not a gate.
"""

import json
import sys


def flatten(obj, prefix=""):
    out = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            out.update(flatten(v, f"{prefix}{k}."))
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            out.update(flatten(v, f"{prefix}{i}."))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix[:-1]] = obj
    return out


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1]) as f:
            prev = flatten(json.load(f))
        with open(sys.argv[2]) as f:
            curr = flatten(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_delta: {e}", file=sys.stderr)
        return 0  # missing/corrupt previous run is not an error
    keys = sorted(set(prev) | set(curr))
    for key in keys:
        if key not in prev:
            print(f"  {key}: (new) {curr[key]}")
        elif key not in curr:
            print(f"  {key}: {prev[key]} (removed)")
        elif prev[key] != curr[key]:
            delta = curr[key] - prev[key]
            pct = f" ({delta / prev[key] * +100.0:+.1f}%)" if prev[key] else ""
            print(f"  {key}: {prev[key]} -> {curr[key]} ({delta:+g}){pct}")
    if prev == curr:
        print("  no numeric changes")
    return 0


if __name__ == "__main__":
    sys.exit(main())

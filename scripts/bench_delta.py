#!/usr/bin/env python3
"""Print per-field deltas between two benchmark JSON files.

Usage: bench_delta.py [--max-regress PCT] PREV.json CURR.json

Walks both objects recursively; for every numeric leaf present in both,
prints ``path: prev -> curr (delta, pct)``. Fields present in only one
file are listed as added/removed.

Without ``--max-regress`` the delta is a report, not a gate: exits 0.
With ``--max-regress PCT`` it also gates:

* pool-dispatched kernel launch counts (leaves whose last path segment
  is ``launches`` or ``total_launches`` — ``inline_launches`` is
  deliberately not gated, since moving work from the pool to the inline
  fast path grows it by design);
* prover-dispatch wall times (leaves named ``sequential_seconds`` or
  ``adaptive_seconds``), with a 10 ms absolute noise floor so timer
  jitter on millisecond-sized rows cannot fail a run;
* per-case peak arena memory (leaves named ``arena_peak_bytes_per_node``
  — normalized per miter node, so suite-composition changes do not mask
  a residency regression). Byte counts are deterministic, so no noise
  floor applies.

Any gated leaf that regresses by more than PCT percent (and, for wall
times, by more than the noise floor) fails the run with exit 1.
"""

import json
import sys


def flatten(obj, prefix=""):
    out = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            out.update(flatten(v, f"{prefix}{k}."))
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            out.update(flatten(v, f"{prefix}{i}."))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix[:-1]] = obj
    return out


def parse_args(argv):
    max_regress = None
    paths = []
    it = iter(argv)
    for arg in it:
        if arg == "--max-regress":
            val = next(it, None)
            if val is None:
                return None, None
            max_regress = float(val)
        elif arg.startswith("--max-regress="):
            max_regress = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        return None, None
    return max_regress, paths


def summarize_sanitizer_overhead(curr_raw):
    """Report the dynamic-sanitizer-on vs verified-replay wall times the
    runtime bench records for its resim-heavy rows (``sanitizer_overhead``
    entries): how much wall time static effect verification saves."""
    rows = curr_raw.get("sanitizer_overhead") if isinstance(curr_raw, dict) else None
    if not rows:
        return
    print("sanitizer overhead (dynamic cross-check vs verified replay):")
    for row in rows:
        try:
            name = row["name"]
            dyn, ver, pct = row["dynamic_seconds"], row["verified_seconds"], row["overhead_pct"]
        except (KeyError, TypeError):
            continue
        print(f"  {name}: dynamic {dyn:.3f}s vs verified {ver:.3f}s (+{pct:.1f}% sanitizer overhead)")


def summarize_prover_dispatch(curr_raw):
    """Report the fixed-sequence vs adaptive-dispatch wall times the
    runtime bench records for its hard-cone rows (``prover_dispatch``
    entries): which engine decided each side and what the concurrent
    race with early-cancel bought."""
    rows = curr_raw.get("prover_dispatch") if isinstance(curr_raw, dict) else None
    if not rows:
        return
    print("prover dispatch (fixed sequence vs adaptive race):")
    for row in rows:
        try:
            name = row["name"]
            seq, ada = row["sequential_seconds"], row["adaptive_seconds"]
            seq_eng, ada_eng = row["sequential_engine"], row["adaptive_engine"]
            raced, speedup = row["raced"], row["speedup"]
        except (KeyError, TypeError):
            continue
        mode = "raced" if raced else "solo"
        print(
            f"  {name}: sequential {seq:.3f}s ({seq_eng}) vs "
            f"adaptive {ada:.3f}s ({ada_eng}, {mode}) — {speedup:.2f}x"
        )


def summarize_window_streaming(curr_raw):
    """Report the runtime bench's residency comparison
    (``window_streaming`` entries): peak live arena bytes for the same
    sweep under whole-table residency vs the level-windowed streaming
    path, and how many signature levels were retired to the spill
    tier."""
    rows = curr_raw.get("window_streaming") if isinstance(curr_raw, dict) else None
    if not rows:
        return
    print("window streaming (whole-table vs level-windowed residency):")
    for row in rows:
        try:
            name = row["name"]
            res, win = row["resident_peak_live_bytes"], row["windowed_peak_live_bytes"]
            spill, spills = row["spill_peak_bytes"], row["window_spills"]
            reduction = row["peak_reduction"]
        except (KeyError, TypeError):
            continue
        print(
            f"  {name}: resident {res}B vs windowed {win}B "
            f"(+{spill}B spill tier, {spills} level spills) — "
            f"{reduction:.2f}x peak reduction"
        )


def summarize_repeat_traffic(curr_raw):
    """Report the service bench's repeat-traffic phase (``repeat_traffic``
    entry): how structurally perturbed duplicate cones settled — from the
    structural cache (identical structure), the semantic NPN-canonical
    tier (same function, new structure), or a fresh engine run."""
    row = curr_raw.get("repeat_traffic") if isinstance(curr_raw, dict) else None
    if not isinstance(row, dict):
        return
    try:
        shards = row["perturbed_shards"]
        structural, semantic = row["structural_hits"], row["semantic_hits"]
        rate = row["settled_cached_rate"]
    except (KeyError, TypeError):
        return
    reproved = max(0, shards - structural - semantic)
    print("repeat traffic (structurally perturbed duplicate cones):")
    print(
        f"  {shards} perturbed shards: {structural} structural hits, "
        f"{semantic} semantic hits, {reproved} re-proved "
        f"({rate * 100.0:.1f}% settled from cache)"
    )


def summarize_net_saturation(curr_raw):
    """Report the network bench's clients-vs-throughput curve (``phases``
    entries plus ``baseline``/``peak``): how throughput scales with
    concurrent clients relative to the single-client stdin baseline."""
    if not isinstance(curr_raw, dict):
        return
    phases = curr_raw.get("phases")
    baseline = curr_raw.get("baseline")
    if not phases or not isinstance(baseline, dict) or "jobs_per_sec" not in baseline:
        return
    print(f"net saturation (baseline {baseline['jobs_per_sec']:.1f} jobs/s "
          f"over {baseline.get('transport', '?')}):")
    for row in phases:
        try:
            clients, jps = row["clients"], row["jobs_per_sec"]
            speedup, util = row["speedup_vs_baseline"], row["worker_utilization"]
        except (KeyError, TypeError):
            continue
        bar = "#" * max(1, round(speedup * 4))
        print(f"  {clients:>3} clients: {jps:>9.1f} jobs/s  {speedup:>5.2f}x  "
              f"util {util:.3f}  {bar}")
    peak = curr_raw.get("peak")
    if isinstance(peak, dict):
        try:
            print(f"  peak: {peak['jobs_per_sec']:.1f} jobs/s at {peak['clients']} "
                  f"clients = {peak['speedup_vs_baseline']:.2f}x baseline, "
                  f"util {peak['worker_utilization']:.3f}")
        except KeyError:
            pass


# Wall-clock leaves are gated with an absolute floor on top of the
# percentage: a millisecond-sized row can double from scheduler jitter
# alone, and that is not a regression worth failing CI over.
WALL_NOISE_FLOOR_SECONDS = 0.010


def main():
    max_regress, paths = parse_args(sys.argv[1:])
    if paths is None:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(paths[0]) as f:
            prev = flatten(json.load(f))
        with open(paths[1]) as f:
            curr_raw = json.load(f)
        curr = flatten(curr_raw)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_delta: {e}", file=sys.stderr)
        return 0  # missing/corrupt previous run is not an error
    keys = sorted(set(prev) | set(curr))
    for key in keys:
        if key not in prev:
            print(f"  {key}: (new) {curr[key]}")
        elif key not in curr:
            print(f"  {key}: {prev[key]} (removed)")
        elif prev[key] != curr[key]:
            delta = curr[key] - prev[key]
            pct = f" ({delta / prev[key] * +100.0:+.1f}%)" if prev[key] else ""
            print(f"  {key}: {prev[key]} -> {curr[key]} ({delta:+g}){pct}")
    if prev == curr:
        print("  no numeric changes")
    summarize_window_streaming(curr_raw)
    summarize_sanitizer_overhead(curr_raw)
    summarize_prover_dispatch(curr_raw)
    summarize_repeat_traffic(curr_raw)
    summarize_net_saturation(curr_raw)
    if max_regress is None:
        return 0
    regressions = []
    for key in keys:
        leaf = key.rsplit(".", 1)[-1]
        if key not in prev or key not in curr:
            continue
        allowed = prev[key] * (1.0 + max_regress / 100.0)
        if leaf in ("launches", "total_launches"):
            if curr[key] > allowed:
                regressions.append((key, prev[key], curr[key]))
        elif leaf in ("sequential_seconds", "adaptive_seconds"):
            if curr[key] > allowed and curr[key] - prev[key] > WALL_NOISE_FLOOR_SECONDS:
                regressions.append((key, prev[key], curr[key]))
        elif leaf == "arena_peak_bytes_per_node":
            if curr[key] > allowed:
                regressions.append((key, prev[key], curr[key]))
    if regressions:
        print(f"gated-leaf regressions beyond {max_regress:g}%:", file=sys.stderr)
        for key, p, c in regressions:
            print(f"  {key}: {p} -> {c}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Smoke benchmark of the device runtime: runs the engine over the
# generator suite and emits BENCH_runtime.json (wall time, modeled /
# serialized cost-model times, arena recycling counters).
#
# Usage: scripts/bench.sh [tiny|small|medium] [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-tiny}"
OUT="${2:-BENCH_runtime.json}"

cargo run --release -p parsweep-bench --bin runtime -- "$SCALE" "$OUT"
echo "--- $OUT ---"
cat "$OUT"

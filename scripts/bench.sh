#!/usr/bin/env bash
# Smoke benchmark of the device runtime: runs the engine over the
# generator suite — nine sweep cases plus the resim-heavy deep-FRAIG
# rows (multiplier_fraig, log2_fraig) — and emits BENCH_runtime.json
# (wall time, modeled / serialized cost-model times, launch split,
# incremental-resim counters, arena recycling counters). Also runs the
# job-service throughput bench, emitting BENCH_svc.json (jobs/sec, cache
# hit rate), and the network saturation bench, emitting BENCH_net.json
# (clients-vs-throughput curve, speedup over the single-client stdin
# baseline, worker utilization); both steps are non-blocking — a service
# or network bench failure must not fail the engine smoke run.
#
# Usage: scripts/bench.sh [tiny|small|medium|large] [output.json] [svc-output.json] [net-output.json]
#
# The scale can also come from the PARSWEEP_SCALE environment variable
# (positional argument wins), so CI matrix jobs can select a rung of the
# ladder without editing the invocation.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-${PARSWEEP_SCALE:-tiny}}"
OUT="${2:-BENCH_runtime.json}"
SVC_OUT="${3:-BENCH_svc.json}"
NET_OUT="${4:-BENCH_net.json}"

# Keep the previous run around so the delta report below has a baseline.
for f in "$OUT" "$SVC_OUT" "$NET_OUT"; do
    [ -f "$f" ] && cp "$f" "$f.prev"
done

cargo run --release -p parsweep-bench --bin runtime -- "$SCALE" "$OUT"
echo "--- $OUT ---"
cat "$OUT"

if cargo run --release -p parsweep-bench --bin svc_bench -- "$SCALE" "$SVC_OUT"; then
    echo "--- $SVC_OUT ---"
    cat "$SVC_OUT"
else
    echo "svc bench failed (non-blocking)" >&2
fi

# The net bench's baseline drives the shipped stdin binary as a
# subprocess; build it first so the bench doesn't silently fall back to
# the in-process baseline.
if cargo build --release -p parsweep-svc --bin svc \
    && cargo run --release -p parsweep-bench --bin net_bench -- "$SCALE" "$NET_OUT"; then
    echo "--- $NET_OUT ---"
    cat "$NET_OUT"
else
    echo "net bench failed (non-blocking)" >&2
fi

# The runtime delta gates pool-dispatched launch counts: a regression
# beyond MAX_REGRESS percent (default 50) fails the run. The svc delta
# stays report-only.
if [ -f "$OUT.prev" ]; then
    echo "--- delta vs previous $OUT ---"
    python3 scripts/bench_delta.py --max-regress "${MAX_REGRESS:-50}" "$OUT.prev" "$OUT"
    rm -f "$OUT.prev"
fi
if [ -f "$SVC_OUT.prev" ]; then
    echo "--- delta vs previous $SVC_OUT ---"
    python3 scripts/bench_delta.py "$SVC_OUT.prev" "$SVC_OUT" || true
    rm -f "$SVC_OUT.prev"
fi
if [ -f "$NET_OUT.prev" ]; then
    echo "--- delta vs previous $NET_OUT ---"
    python3 scripts/bench_delta.py "$NET_OUT.prev" "$NET_OUT" || true
    rm -f "$NET_OUT.prev"
fi

//! # parsweep — simulation-based parallel sweeping for CEC
//!
//! A Rust reproduction of *"Simulation-based Parallel Sweeping: A New
//! Perspective on Combinational Equivalence Checking"* (DAC 2025).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`aig`] — And-Inverter Graphs, AIGER I/O, miters, `double`;
//! * [`par`] — the data-parallel kernel-launch executor (the GPU
//!   execution-model substrate);
//! * [`sim`] — partial and exhaustive bit-parallel simulation;
//! * [`cut`] — priority-cut enumeration with the Table-I criteria;
//! * [`sat`] — CDCL solver, SAT sweeping baseline, portfolio checker;
//! * [`synth`] — `resyn2`-equivalent optimization (balance / rewrite /
//!   refactor);
//! * [`engine`] — the paper's simulation-based CEC engine and the
//!   combined engine + SAT flow;
//! * [`svc`] — the multi-client CEC job service (cone sharding, worker
//!   pool, result cache, deadlines).
//!
//! ## Quickstart
//!
//! ```
//! use parsweep::aig::{Aig, miter};
//! use parsweep::engine::{sim_sweep, EngineConfig, Verdict};
//! use parsweep::par::Executor;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two implementations of a full adder.
//! let mut a = Aig::new();
//! let xs = a.add_inputs(3);
//! let axb = a.xor(xs[0], xs[1]);
//! let sum = a.xor(axb, xs[2]);
//! let c1 = a.and(xs[0], xs[1]);
//! let c2 = a.and(axb, xs[2]);
//! let carry = a.or(c1, c2);
//! a.add_po(sum);
//! a.add_po(carry);
//!
//! let mut b = Aig::new();
//! let ys = b.add_inputs(3);
//! let s1 = b.xor(ys[0], ys[1]);
//! let sum2 = b.xor(s1, ys[2]);
//! let carry2 = b.maj3(ys[0], ys[1], ys[2]);
//! b.add_po(sum2);
//! b.add_po(carry2);
//!
//! let m = miter(&a, &b)?;
//! let exec = Executor::new();
//! let result = sim_sweep(&m, &exec, &EngineConfig::default());
//! assert_eq!(result.verdict, Verdict::Equivalent);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use parsweep_aig as aig;
pub use parsweep_core as engine;
pub use parsweep_cut as cut;
pub use parsweep_par as par;
pub use parsweep_sat as sat;
pub use parsweep_sim as sim;
pub use parsweep_svc as svc;
pub use parsweep_synth as synth;

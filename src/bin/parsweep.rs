//! The `parsweep` command-line tool: equivalence checking and AIG
//! utilities over AIGER files.
//!
//! ```text
//! parsweep check <left.aig> <right.aig> [--engine sim|sat|portfolio|combined] [--budget <s>]
//! parsweep stats <file.aig>
//! parsweep optimize <in.aig> <out.aig>
//! parsweep convert <in.aag|aig> <out.aag|aig>
//! parsweep double <in.aig> <out.aig> --times <n>
//! parsweep fraig <in.aig> <out.aig>
//! parsweep verilog <in.aig> [out.v]
//! parsweep dot <in.aig> [out.dot]
//! ```
//!
//! Exit codes for `check`: 0 equivalent, 1 not equivalent, 2 undecided.

use std::process::ExitCode;
use std::time::Duration;

use parsweep::aig::{aiger, dot, miter, verilog, Aig, NetworkStats};
use parsweep::engine::{combined_check, sim_sweep, CombinedConfig, EngineConfig, Report, Verdict};
use parsweep::par::Executor;
use parsweep::sat::{portfolio_check, sat_sweep, PortfolioConfig, SweepConfig};
use parsweep::synth::resyn2;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  parsweep check <left> <right> [--engine sim|sat|portfolio|combined] [--budget <s>]\n  \
         parsweep stats <file>\n  \
         parsweep optimize <in> <out>\n  \
         parsweep convert <in> <out>\n  \
         parsweep double <in> <out> --times <n>\n  \
         parsweep fraig <in> <out>\n  \
         parsweep verilog <in> [out]\n  \
         parsweep dot <in> [out]"
    );
    ExitCode::from(64)
}

fn load(path: &str) -> Result<Aig, String> {
    aiger::read_aiger_file(path).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(65)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Ok(usage());
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "stats" => {
            let [path] = &args[1..] else {
                return Ok(usage());
            };
            let aig = load(path)?;
            println!("{}", NetworkStats::of(&aig));
            Ok(ExitCode::SUCCESS)
        }
        "optimize" => {
            let [input, output] = &args[1..] else {
                return Ok(usage());
            };
            let aig = load(input)?;
            let opt = resyn2(&aig);
            println!(
                "{} -> {} ANDs, depth {} -> {}",
                aig.num_ands(),
                opt.num_ands(),
                aig.depth(),
                opt.depth()
            );
            aiger::write_aiger_file(&opt, output).map_err(|e| e.to_string())?;
            Ok(ExitCode::SUCCESS)
        }
        "convert" => {
            let [input, output] = &args[1..] else {
                return Ok(usage());
            };
            let aig = load(input)?;
            aiger::write_aiger_file(&aig, output).map_err(|e| e.to_string())?;
            Ok(ExitCode::SUCCESS)
        }
        "double" => {
            let mut times = 1usize;
            let mut files: Vec<&String> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "--times" {
                    times = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--times needs a number")?;
                } else {
                    files.push(a);
                }
            }
            let [input, output] = files[..] else {
                return Ok(usage());
            };
            let aig = load(input)?;
            let doubled = aig.double_times(times);
            println!(
                "{} ANDs -> {} ANDs ({} copies)",
                aig.num_ands(),
                doubled.num_ands(),
                1usize << times
            );
            aiger::write_aiger_file(&doubled, output).map_err(|e| e.to_string())?;
            Ok(ExitCode::SUCCESS)
        }
        "fraig" => {
            let [input, output] = &args[1..] else {
                return Ok(usage());
            };
            let aig = load(input)?;
            let exec = Executor::new();
            let r =
                parsweep::engine::fraig(&aig, &exec, &parsweep::engine::EngineConfig::default());
            println!(
                "{} -> {} ANDs ({} equivalences merged)",
                aig.num_ands(),
                r.reduced.num_ands(),
                r.stats.proved_pairs
            );
            aiger::write_aiger_file(&r.reduced, output).map_err(|e| e.to_string())?;
            Ok(ExitCode::SUCCESS)
        }
        "verilog" => {
            let input = args.get(1).ok_or("verilog needs an input file")?;
            let aig = load(input)?;
            match args.get(2) {
                Some(out) => {
                    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
                    verilog::write_verilog(&aig, "parsweep_dut", file)
                        .map_err(|e| e.to_string())?;
                }
                None => print!("{}", verilog::to_verilog_string(&aig, "parsweep_dut")),
            }
            Ok(ExitCode::SUCCESS)
        }
        "dot" => {
            let input = args.get(1).ok_or("dot needs an input file")?;
            let aig = load(input)?;
            match args.get(2) {
                Some(out) => {
                    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
                    dot::write_dot(&aig, file).map_err(|e| e.to_string())?;
                }
                None => print!("{}", dot::to_dot_string(&aig)),
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut engine = "combined".to_string();
    let mut budget = Duration::from_secs(300);
    let mut files: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                engine = it.next().ok_or("--engine needs a value")?.clone();
            }
            "--budget" => {
                budget = Duration::from_secs(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--budget needs seconds")?,
                );
            }
            _ => files.push(a),
        }
    }
    let [left_path, right_path] = files[..] else {
        return Err("check needs exactly two AIGER files".into());
    };
    let left = load(left_path)?;
    let right = load(right_path)?;
    let m = miter(&left, &right).map_err(|e| e.to_string())?;
    let exec = Executor::new();
    let sat_cfg = SweepConfig {
        wall_budget: Some(budget),
        ..SweepConfig::default()
    };
    let verdict = match engine.as_str() {
        "sim" => {
            let r = sim_sweep(&m, &exec, &EngineConfig::default());
            println!("{}", Report::new(&r));
            r.verdict
        }
        "sat" => sat_sweep(&m, &exec, &sat_cfg).verdict,
        "portfolio" => {
            portfolio_check(
                &m,
                &exec,
                &PortfolioConfig {
                    sweep: sat_cfg,
                    ..PortfolioConfig::default()
                },
            )
            .verdict
        }
        "combined" => {
            let r = combined_check(
                &m,
                &exec,
                &CombinedConfig {
                    sat: sat_cfg,
                    ..CombinedConfig::default()
                },
            );
            println!("{}", Report::new(&r.engine));
            if r.sat.is_some() {
                println!("sat fallback: {:.3}s", r.sat_seconds);
            }
            r.verdict
        }
        other => return Err(format!("unknown engine {other:?}")),
    };
    match verdict {
        Verdict::Equivalent => {
            println!("EQUIVALENT");
            Ok(ExitCode::SUCCESS)
        }
        Verdict::NotEquivalent(cex) => {
            println!("NOT EQUIVALENT");
            println!("counter-example: {:?}", cex.inputs());
            let d = parsweep::engine::diagnose(&m, &cex);
            println!("firing output pairs: {:?}", d.firing_pos);
            println!("minimized pattern:   {:?}", d.minimized.inputs());
            Ok(ExitCode::from(1))
        }
        Verdict::Undecided => {
            println!("UNDECIDED (budget exhausted)");
            Ok(ExitCode::from(2))
        }
    }
}

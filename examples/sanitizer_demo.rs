//! Kernel sanitizer demo: the executor-model analogue of running a CUDA
//! kernel under `compute-sanitizer --tool racecheck`.
//!
//! Shows a disciplined kernel passing clean, then three seeded bugs —
//! a write-write race, a same-launch read-write hazard, and an
//! out-of-bounds write — each detected and reported with the kernel
//! label, launch ordinal, buffer, index, and conflicting virtual tids.
//!
//! Run with: `cargo run --example sanitizer_demo`

use parsweep::par::{Executor, SanitizerConfig};

fn main() {
    // Accumulate reports instead of panicking on the first hazard.
    let exec = Executor::with_sanitizer_config(
        4,
        SanitizerConfig {
            fail_fast: false,
            ..SanitizerConfig::default()
        },
    );

    // A disciplined kernel: every tid writes its own slot. Clean.
    let mut squares = vec![0u64; 8];
    {
        let out = exec.bind("squares", &mut squares);
        exec.launch_labeled("square", 8, |tid| {
            // SAFETY: each tid writes only its own slot.
            unsafe { out.write(tid, tid, (tid * tid) as u64) };
        });
    }
    println!("square kernel: {squares:?}");
    println!(
        "reports after clean kernel: {}\n",
        exec.take_reports().len()
    );

    // Bug 1: every tid writes slot 0 — a write-write race on a real GPU.
    let mut buf = vec![0u64; 8];
    {
        let cells = exec.bind("accumulator", &mut buf);
        exec.launch_labeled("racy-sum", 8, |tid| {
            // SAFETY: intentionally racy for the demo; sanitized launches
            // are serialized, so the race is logged, never exercised.
            unsafe { cells.write(tid, 0, tid as u64) };
        });
    }

    // Bug 2: tids read a neighbour's slot written in the same launch.
    {
        let cells = exec.bind("pipeline", &mut buf);
        exec.launch_labeled("read-neighbour", 4, |tid| {
            // SAFETY: intentionally hazardous for the demo; serialized.
            unsafe {
                cells.write(tid, tid, tid as u64);
                let _ = cells.read(tid, (tid + 1) % 4);
            }
        });
    }

    // Bug 3: a tid writes past the end of the buffer.
    {
        let cells = exec.bind("small", &mut buf[..4]);
        exec.launch_labeled("off-by-len", 1, |tid| {
            // SAFETY: deliberately out of bounds; the sanitizer reports
            // and suppresses the physical write.
            unsafe { cells.write(tid, 17, 1) };
        });
    }

    println!("seeded-bug reports:");
    for r in exec.take_reports() {
        println!("  {r}");
    }
}

//! A miniature DIMACS SAT solver CLI over the embedded CDCL engine.
//!
//! Usage: `cargo run --release --example dimacs_solver -- [file.cnf]`
//!
//! Without a file, solves a built-in pigeonhole instance. Prints
//! `s SATISFIABLE` / `s UNSATISFIABLE` and a `v` model line, DIMACS-style.

use parsweep::sat::{dimacs, SatLit, SatVar, SolveResult};

fn builtin_php(n: usize) -> dimacs::Cnf {
    // n pigeons, n-1 holes.
    let var = |p: usize, h: usize| SatVar::new((p * (n - 1) + h) as u32);
    let mut clauses: Vec<Vec<SatLit>> = Vec::new();
    for p in 0..n {
        clauses.push((0..n - 1).map(|h| var(p, h).pos()).collect());
    }
    for h in 0..n - 1 {
        for p1 in 0..n {
            for p2 in p1 + 1..n {
                clauses.push(vec![var(p1, h).neg(), var(p2, h).neg()]);
            }
        }
    }
    dimacs::Cnf {
        num_vars: n * (n - 1),
        clauses,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cnf = match std::env::args().nth(1) {
        Some(path) => dimacs::read_dimacs(std::fs::File::open(path)?)?,
        None => {
            println!("c no file given; solving built-in PHP(6 -> 5)");
            builtin_php(6)
        }
    };
    println!(
        "c {} variables, {} clauses",
        cnf.num_vars,
        cnf.clauses.len()
    );
    let mut solver = cnf.into_solver();
    match solver.solve(&[]) {
        SolveResult::Sat => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for v in 0..cnf.num_vars {
                let var = SatVar::new(v as u32);
                let val = solver.model_value(var).unwrap_or(false);
                line.push_str(&format!(
                    " {}",
                    if val { v as i64 + 1 } else { -(v as i64 + 1) }
                ));
            }
            line.push_str(" 0");
            println!("{line}");
        }
        SolveResult::Unsat => println!("s UNSATISFIABLE"),
        SolveResult::Unknown => println!("s UNKNOWN"),
    }
    let st = solver.stats();
    println!(
        "c {} conflicts, {} decisions, {} propagations, {} restarts, {} reductions",
        st.conflicts, st.decisions, st.propagations, st.restarts, st.reductions
    );
    Ok(())
}

//! FRAIG construction: use the equivalence-checking machinery as a logic
//! optimizer — functionally equivalent internal nodes are proved by
//! exhaustive simulation and merged, shrinking the network.
//!
//! Run with: `cargo run --release --example fraig_dedup`

use parsweep::aig::{Aig, Lit};
use parsweep::engine::{fraig, EngineConfig};
use parsweep::par::Executor;

/// Builds a network riddled with redundant re-implementations: four
/// copies of the same comparator, each structured differently.
fn redundant_design() -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs(4);
    let b = aig.add_inputs(4);

    // "a == b", four ways.
    let eq_xnor = {
        let bits: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| aig.xnor(x, y)).collect();
        aig.and_all(bits)
    };
    let eq_nxor = {
        let bits: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| aig.xor(x, y)).collect();
        let any = aig.or_all(bits);
        !any
    };
    let eq_mux = {
        let bits: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| aig.mux(x, y, !y)).collect();
        aig.and_all(bits)
    };
    let eq_chain = {
        let mut acc = Lit::TRUE;
        for (&x, &y) in a.iter().zip(&b) {
            let e = aig.xnor(x, y);
            acc = aig.and(acc, e);
        }
        acc
    };
    aig.add_po(eq_xnor);
    aig.add_po(eq_nxor);
    aig.add_po(eq_mux);
    aig.add_po(eq_chain);
    aig
}

fn main() {
    let aig = redundant_design();
    println!(
        "before: {} ANDs, depth {}, {} POs",
        aig.num_ands(),
        aig.depth(),
        aig.num_pos()
    );

    let exec = Executor::new();
    let r = fraig(&aig, &exec, &EngineConfig::default());
    println!(
        "after:  {} ANDs ({} equivalences merged, {:.3}s)",
        r.reduced.num_ands(),
        r.stats.proved_pairs,
        r.stats.seconds
    );

    // Verify with the slow evaluator.
    let mut worst = 0usize;
    for v in 0..1usize << 8 {
        let bits: Vec<bool> = (0..8).map(|i| v >> i & 1 == 1).collect();
        assert_eq!(aig.eval(&bits), r.reduced.eval(&bits));
        worst = worst.max(v);
    }
    println!("verified on all {} input patterns", worst + 1);
    assert!(r.reduced.num_ands() < aig.num_ands());
}

//! A tour of the exhaustive simulator: build windows by hand, merge them,
//! and run bounded-memory multi-round simulation — the machinery of the
//! paper's Algorithm 1 without the surrounding engine.
//!
//! Run with: `cargo run --release --example exhaustive_simulation`

use parsweep::aig::{Aig, Var};
use parsweep::par::Executor;
use parsweep::sim::{check_windows, merge_windows, PairCheck, PairOutcome, Window};

fn main() {
    // A register file slice: eight 4-input majority/mux cells over
    // overlapping input windows, built twice with different structure.
    let mut aig = Aig::new();
    let xs = aig.add_inputs(12);
    let mut pairs = Vec::new();
    for k in 0..8 {
        let a = xs[k % 12];
        let b = xs[(k + 1) % 12];
        let c = xs[(k + 2) % 12];
        let v1 = aig.maj3(a, b, c);
        let or = aig.or(b, c);
        let and = aig.and(b, c);
        let v2 = aig.mux(a, or, and);
        pairs.push(PairCheck {
            a: v1.var().min(v2.var()),
            b: v1.var().max(v2.var()),
            complement: v1.is_complemented() != v2.is_complemented(),
        });
    }

    // One global-checking window per pair (inputs = support union).
    let windows: Vec<Window> = pairs.iter().map(|&p| Window::global(&aig, p)).collect();
    let entries: usize = windows.iter().map(|w| w.num_entries()).sum();
    println!(
        "{} windows, {} total simulation-table entries before merging",
        windows.len(),
        entries
    );

    // Window merging (§III-B3): overlapping supports collapse.
    let merged = merge_windows(windows.clone(), 6);
    let merged_entries: usize = merged.iter().map(|w| w.num_entries()).sum();
    println!(
        "{} windows, {} entries after merging with k_s = 6",
        merged.len(),
        merged_entries
    );

    let exec = Executor::new();

    // Plenty of memory: one round.
    let (outcomes, effort) = check_windows(&aig, &exec, &merged, 1 << 16);
    let proved = outcomes
        .iter()
        .flatten()
        .filter(|o| matches!(o, PairOutcome::Equal))
        .count();
    println!(
        "roomy run:  {proved}/{} pairs proved, E = {} words, {} rounds, {} node-words",
        pairs.len(),
        effort.entry_words,
        effort.rounds,
        effort.words
    );

    // Starved memory: the simulation table forces multiple rounds
    // (Algorithm 1's segment loop), same verdicts.
    let tight = merged.iter().map(|w| w.num_entries()).sum::<usize>();
    let (outcomes2, effort2) = check_windows(&aig, &exec, &merged, tight);
    assert_eq!(outcomes, outcomes2, "verdicts are memory-independent");
    println!(
        "tight run:  E = {} words, {} rounds — identical verdicts",
        effort2.entry_words, effort2.rounds
    );

    // The simulator also *disproves*: check a pair that is wrong.
    let bogus = PairCheck {
        a: pairs[0].a,
        b: pairs[1].b,
        complement: false,
    };
    let w = Window::global(&aig, bogus);
    let (out, _) = check_windows(&aig, &exec, std::slice::from_ref(&w), 1 << 16);
    if let PairOutcome::Mismatch {
        pattern_index,
        assignment,
    } = &out[0][0]
    {
        println!(
            "disproof: pattern #{pattern_index} over inputs {:?} -> {:?}",
            w.inputs.iter().map(|v: &Var| v.index()).collect::<Vec<_>>(),
            assignment
        );
    }
}

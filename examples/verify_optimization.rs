//! The paper's motivating workload: verify that logic optimization did
//! not change a design's function. Builds a multiplier, optimizes it with
//! the `resyn2`-equivalent script, and checks original vs optimized with
//! the combined engine + SAT flow — exactly the "Ours (GPU+ABC)" setup.
//!
//! Run with: `cargo run --release --example verify_optimization`

use parsweep::aig::{miter, Aig, Lit};
use parsweep::engine::{combined_check, CombinedConfig, Verdict};
use parsweep::par::Executor;
use parsweep::synth::resyn2;

/// A w x w array multiplier.
fn multiplier(w: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs(w);
    let b = aig.add_inputs(w);
    let mut acc: Vec<Lit> = vec![Lit::FALSE; 2 * w];
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = Lit::FALSE;
        for (j, &bj) in b.iter().enumerate() {
            let pp = aig.and(ai, bj);
            let s1 = aig.xor(acc[i + j], pp);
            let sum = aig.xor(s1, carry);
            carry = aig.maj3(acc[i + j], pp, carry);
            acc[i + j] = sum;
        }
        let mut k = i + w;
        while carry != Lit::FALSE && k < 2 * w {
            let s = aig.xor(acc[k], carry);
            carry = aig.and(acc[k], carry);
            acc[k] = s;
            k += 1;
        }
    }
    for bit in acc {
        aig.add_po(bit);
    }
    aig
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = multiplier(8);
    println!(
        "original multiplier: {} ANDs, depth {}",
        original.num_ands(),
        original.depth()
    );

    let optimized = resyn2(&original);
    println!(
        "after resyn2:        {} ANDs, depth {}",
        optimized.num_ands(),
        optimized.depth()
    );

    let m = miter(&original, &optimized)?;
    println!("miter: {} ANDs", m.num_ands());

    let exec = Executor::new();
    let result = combined_check(&m, &exec, &CombinedConfig::default());
    match &result.verdict {
        Verdict::Equivalent => println!("optimization verified EQUIVALENT"),
        Verdict::NotEquivalent(cex) => {
            println!("optimizer bug! counter-example: {:?}", cex.inputs())
        }
        Verdict::Undecided => println!("undecided within budget"),
    }
    println!(
        "engine: {:.3}s ({:.1}% reduced) | SAT fallback: {:.3}s",
        result.engine_seconds,
        result.engine.stats.reduction_pct(),
        result.sat_seconds
    );
    assert_eq!(result.verdict, Verdict::Equivalent);
    Ok(())
}

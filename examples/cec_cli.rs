//! A miniature equivalence-checking CLI over AIGER files — the
//! command-line shape of ABC's `&cec`, backed by the simulation engine
//! plus SAT fallback.
//!
//! Usage:
//! ```text
//! cargo run --release --example cec_cli -- <left.aag|aig> <right.aag|aig> [--engine sim|sat|combined]
//! ```
//!
//! With no arguments, the example writes two demo AIGER files to a temp
//! directory and checks them, so it is runnable out of the box.

use std::path::PathBuf;

use parsweep::aig::{aiger, miter, Aig};
use parsweep::engine::{combined_check, sim_sweep, CombinedConfig, EngineConfig, Verdict};
use parsweep::par::Executor;
use parsweep::sat::{sat_sweep, SweepConfig};

fn demo_files() -> Result<(PathBuf, PathBuf), Box<dyn std::error::Error>> {
    // A 4-bit gray-code encoder, twice.
    let build = |wrap: bool| {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        for i in 0..3 {
            let g = if wrap {
                aig.xor(xs[i], xs[i + 1])
            } else {
                // (a | b) & !(a & b)
                let o = aig.or(xs[i], xs[i + 1]);
                let a = aig.and(xs[i], xs[i + 1]);
                aig.and(o, !a)
            };
            aig.add_po(g);
        }
        aig.add_po(xs[3]);
        aig
    };
    let dir = std::env::temp_dir();
    let left = dir.join("parsweep_demo_left.aag");
    let right = dir.join("parsweep_demo_right.aig");
    aiger::write_aiger_file(&build(true), &left)?;
    aiger::write_aiger_file(&build(false), &right)?;
    Ok((left, right))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut engine = "combined".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => engine = it.next().expect("--engine <sim|sat|combined>").clone(),
            other => files.push(other.to_string()),
        }
    }
    let (left_path, right_path) = if files.len() == 2 {
        (PathBuf::from(&files[0]), PathBuf::from(&files[1]))
    } else {
        println!("no files given — generating demo AIGER files");
        demo_files()?
    };

    let left = aiger::read_aiger_file(&left_path)?;
    let right = aiger::read_aiger_file(&right_path)?;
    println!(
        "{}: {} PIs, {} POs, {} ANDs",
        left_path.display(),
        left.num_pis(),
        left.num_pos(),
        left.num_ands()
    );
    println!(
        "{}: {} PIs, {} POs, {} ANDs",
        right_path.display(),
        right.num_pis(),
        right.num_pos(),
        right.num_ands()
    );

    let m = miter(&left, &right)?;
    let exec = Executor::new();
    let verdict = match engine.as_str() {
        "sim" => sim_sweep(&m, &exec, &EngineConfig::default()).verdict,
        "sat" => sat_sweep(&m, &exec, &SweepConfig::default()).verdict,
        "combined" => combined_check(&m, &exec, &CombinedConfig::default()).verdict,
        other => return Err(format!("unknown engine {other:?}").into()),
    };
    match verdict {
        Verdict::Equivalent => println!("Networks are equivalent"),
        Verdict::NotEquivalent(cex) => {
            println!("Networks are NOT EQUIVALENT");
            println!("counter-example (PI values in order): {:?}", cex.inputs());
            let d = parsweep::engine::diagnose(&m, &cex);
            println!("firing output pairs: {:?}", d.firing_pos);
            println!("minimized pattern:   {:?}", d.minimized.inputs());
            println!("essential inputs:    {:?}", d.essential_pis);
            std::process::exit(1);
        }
        Verdict::Undecided => {
            println!("UNDECIDED within budget");
            std::process::exit(2);
        }
    }
    Ok(())
}

//! Engine anatomy: watch each phase of the simulation-based engine work
//! on a miter that needs all three — PO checking (P), global function
//! checking (G) and repeated local function checking (L) — then inspect
//! the parallel work profile recorded by the kernel-launch executor.
//!
//! Run with: `cargo run --release --example engine_anatomy`

use parsweep::aig::{miter, Aig, Lit};
use parsweep::engine::{sim_sweep_traced, EngineConfig};
use parsweep::par::Executor;

/// A wide adder in two styles (deep carry chains defeat pure PO checking
/// and exercise the internal phases).
fn adder(width: usize, majority: bool) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs(width);
    let b = aig.add_inputs(width);
    let mut carry = Lit::FALSE;
    for i in 0..width {
        let axb = aig.xor(a[i], b[i]);
        let sum = aig.xor(axb, carry);
        carry = if majority {
            aig.maj3(a[i], b[i], carry)
        } else {
            let g = aig.and(a[i], b[i]);
            let p = aig.and(axb, carry);
            aig.or(g, p)
        };
        aig.add_po(sum);
    }
    aig.add_po(carry);
    aig
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = miter(&adder(24, false), &adder(24, true))?;
    println!(
        "miter: {} ANDs, depth {}, {} POs",
        m.num_ands(),
        m.depth(),
        m.num_pos()
    );

    let exec = Executor::new();
    let cfg = EngineConfig::default();
    println!(
        "engine parameters: k_P={} k_p={} k_g={} k_l={} C={}",
        cfg.k_po_all, cfg.k_po, cfg.k_g, cfg.cut.k_l, cfg.cut.c
    );

    let (result, snapshots) = sim_sweep_traced(&m, &exec, &cfg);
    println!();
    println!("phase-by-phase miter size (the Fig. 7 intermediate miters):");
    println!("  {:>6}: {:>8} ANDs", "start", m.num_ands());
    for (label, snap) in &snapshots {
        println!("  {label:>6}: {:>8} ANDs", snap.num_ands());
    }

    let (p, g, l, o) = result.stats.phase_times.percentages();
    println!();
    println!("runtime breakdown (the Fig. 6 bar for this case):");
    println!("  P={p:.1}%  G={g:.1}%  L={l:.1}%  other={o:.1}%");
    println!(
        "  {} local phases, {} pairs proved, {} (pair,cut) checks inconclusive",
        result.stats.local_phases, result.stats.proved_pairs, result.stats.inconclusive_checks
    );

    let stats = exec.stats();
    println!();
    println!("parallel work profile (kernel-launch executor):");
    println!(
        "  {} pool + {} inline launches, {} total work items, widest launch {}",
        stats.launches, stats.inline_launches, stats.total_threads, stats.widest
    );
    println!(
        "  modeled time on 1 core: {} units; on 4096 GPU-ish lanes: {} units ({}x max speedup)",
        stats.modeled_time(1),
        stats.modeled_time(4096),
        stats.max_speedup() as u64
    );
    println!(
        "  stream overlap on 4096 lanes: critical path {} vs serialized {} units",
        stats.modeled_time(4096),
        stats.serialized_time(4096)
    );
    println!(
        "  buffer arena: {} hits / {} misses, peak pooled footprint {} bytes",
        stats.arena_hits, stats.arena_misses, stats.arena_peak_bytes
    );

    println!();
    println!("verdict: {:?}", result.verdict);
    Ok(())
}

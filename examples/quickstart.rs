//! Quickstart: prove two structurally different implementations of a
//! 4-bit adder equivalent with the simulation-based engine.
//!
//! Run with: `cargo run --release --example quickstart`

use parsweep::aig::{miter, Aig, Lit};
use parsweep::engine::{sim_sweep, EngineConfig, Verdict};
use parsweep::par::Executor;

/// A ripple-carry adder: carry = (a & b) | ((a ^ b) & c).
fn ripple_adder(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs(width);
    let b = aig.add_inputs(width);
    let mut carry = Lit::FALSE;
    for i in 0..width {
        let axb = aig.xor(a[i], b[i]);
        let sum = aig.xor(axb, carry);
        let g = aig.and(a[i], b[i]);
        let p = aig.and(axb, carry);
        carry = aig.or(g, p);
        aig.add_po(sum);
    }
    aig.add_po(carry);
    aig
}

/// The same adder with majority-gate carries: carry = MAJ(a, b, c).
fn majority_adder(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs(width);
    let b = aig.add_inputs(width);
    let mut carry = Lit::FALSE;
    for i in 0..width {
        let axb = aig.xor(a[i], b[i]);
        let sum = aig.xor(axb, carry);
        carry = aig.maj3(a[i], b[i], carry);
        aig.add_po(sum);
    }
    aig.add_po(carry);
    aig
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let left = ripple_adder(4);
    let right = majority_adder(4);
    println!(
        "left: {} ANDs, right: {} ANDs",
        left.num_ands(),
        right.num_ands()
    );

    // A miter XORs corresponding outputs; proving every XOR constant zero
    // proves the circuits equivalent.
    let m = miter(&left, &right)?;
    println!("miter: {} ANDs, {} POs", m.num_ands(), m.num_pos());

    let exec = Executor::new();
    let result = sim_sweep(&m, &exec, &EngineConfig::default());
    match &result.verdict {
        Verdict::Equivalent => println!("EQUIVALENT — proved by exhaustive simulation"),
        Verdict::NotEquivalent(cex) => println!("NOT equivalent, e.g. inputs {:?}", cex.inputs()),
        Verdict::Undecided => println!("undecided (reduced to {} ANDs)", result.reduced.num_ands()),
    }
    println!(
        "engine stats: {} POs proved, {} pairs proved, {:.1}% reduced, {:.3}s",
        result.stats.pos_proved,
        result.stats.proved_pairs,
        result.stats.reduction_pct(),
        result.stats.seconds
    );
    assert_eq!(result.verdict, Verdict::Equivalent);
    Ok(())
}

//! Soundness fuzzing: on small random miters the engines' verdicts are
//! checked against ground-truth brute-force evaluation.

use parsweep::aig::{miter, random::random_aig, random::SplitMix64, Aig};
use parsweep::engine::{sim_sweep, EngineConfig, Verdict};
use parsweep::par::Executor;
use parsweep::sat::{sat_sweep, SweepConfig};

fn exec() -> Executor {
    Executor::with_threads(1)
}

/// Ground truth by exhaustive evaluation (miters with <= 12 PIs).
fn truly_equivalent(m: &Aig) -> bool {
    let n = m.num_pis();
    assert!(n <= 12, "brute force cap");
    (0..1usize << n).all(|i| {
        let bits: Vec<bool> = (0..n).map(|k| i >> k & 1 == 1).collect();
        !m.eval(&bits).iter().any(|&x| x)
    })
}

/// Mutates a circuit in a random small way (may or may not change its
/// function — ground truth decides).
fn mutate(aig: &Aig, rng: &mut SplitMix64) -> Aig {
    let mut out = aig.clone();
    match rng.below(3) {
        0 => {
            // Complement a PO.
            let i = rng.below(out.num_pos());
            let po = out.po(i);
            out.set_po(i, !po);
        }
        1 => {
            // Redirect a PO to another node (often changes function).
            let i = rng.below(out.num_pos());
            let target = 1 + rng.below(out.num_nodes() - 1);
            out.set_po(
                i,
                parsweep::aig::Var::new(target as u32).lit_with(rng.bool()),
            );
        }
        _ => {
            // Rebuild (never changes function).
            out = out.clean();
        }
    }
    out
}

#[test]
fn verdicts_match_ground_truth_on_random_mutations() {
    let mut rng = SplitMix64::new(0xf002);
    let exec = exec();
    let mut checked_eq = 0;
    let mut checked_neq = 0;
    for seed in 0..30u64 {
        let a = random_aig(6, 40, 3, seed);
        let b = mutate(&a, &mut rng);
        let Ok(m) = miter(&a, &b) else { continue };
        let truth = truly_equivalent(&m);
        if truth {
            checked_eq += 1;
        } else {
            checked_neq += 1;
        }

        let sim = sim_sweep(&m, &exec, &EngineConfig::default());
        match (&sim.verdict, truth) {
            (Verdict::Equivalent, false) => panic!("seed {seed}: sim false-equivalent"),
            (Verdict::NotEquivalent(cex), true) => {
                panic!("seed {seed}: sim false-disproof {:?}", cex.inputs())
            }
            (Verdict::NotEquivalent(cex), false) => {
                assert!(cex.fires(&m), "seed {seed}: invalid witness")
            }
            _ => {}
        }

        let sat = sat_sweep(&m, &exec, &SweepConfig::default());
        match (&sat.verdict, truth) {
            (Verdict::Equivalent, false) => panic!("seed {seed}: sat false-equivalent"),
            (Verdict::NotEquivalent(_), true) => panic!("seed {seed}: sat false-disproof"),
            _ => {}
        }
    }
    assert!(checked_eq >= 3, "fuzz must cover equivalent cases");
    assert!(checked_neq >= 3, "fuzz must cover inequivalent cases");
}

#[test]
fn engine_decides_all_small_miters() {
    // At <= 8 PIs every PO fits the default k_P: the engine must never
    // return Undecided.
    for seed in 100..115u64 {
        let a = random_aig(8, 60, 2, seed);
        let b = random_aig(8, 60, 2, seed + 5000);
        let m = miter(&a, &b).unwrap();
        let r = sim_sweep(&m, &exec(), &EngineConfig::default());
        assert!(
            !matches!(r.verdict, Verdict::Undecided),
            "seed {seed}: small miter must be decidable one-shot"
        );
    }
}

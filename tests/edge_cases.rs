//! Edge cases and failure injection across the whole stack.

use parsweep::aig::{aiger, is_proved, miter, Aig, Lit};
use parsweep::engine::{combined_check, sim_sweep, CombinedConfig, EngineConfig, Verdict};
use parsweep::par::Executor;
use parsweep::sat::{sat_sweep, SweepConfig};
use parsweep::synth::{balance, resyn2, rewrite, RewriteParams};

fn exec() -> Executor {
    Executor::with_threads(1)
}

#[test]
fn empty_miter_is_trivially_equivalent() {
    // Zero POs: nothing to disprove.
    let mut a = Aig::new();
    a.add_inputs(3);
    let m = miter(&a, &a).unwrap();
    assert!(is_proved(&m));
    let r = sim_sweep(&m, &exec(), &EngineConfig::default());
    assert_eq!(r.verdict, Verdict::Equivalent);
    let s = sat_sweep(&m, &exec(), &SweepConfig::default());
    assert_eq!(s.verdict, Verdict::Equivalent);
}

#[test]
fn po_directly_on_pi() {
    let mut a = Aig::new();
    let xs = a.add_inputs(2);
    a.add_po(xs[0]);
    a.add_po(!xs[1]);
    // Same wires, same order: equivalent.
    let m = miter(&a, &a.clone()).unwrap();
    let r = sim_sweep(&m, &exec(), &EngineConfig::default());
    assert_eq!(r.verdict, Verdict::Equivalent);
    // Swapped wires: not equivalent.
    let mut b = Aig::new();
    let ys = b.add_inputs(2);
    b.add_po(ys[1]);
    b.add_po(!ys[0]);
    let m2 = miter(&a, &b).unwrap();
    match sim_sweep(&m2, &exec(), &EngineConfig::default()).verdict {
        Verdict::NotEquivalent(cex) => assert!(cex.fires(&m2)),
        other => panic!("expected disproof, got {other:?}"),
    }
}

#[test]
fn constant_pos_both_polarities() {
    let mut a = Aig::new();
    let xs = a.add_inputs(2);
    let t = a.and(xs[0], !xs[0]); // folds to FALSE
    a.add_po(t);
    a.add_po(Lit::TRUE);
    let mut b = Aig::new();
    let ys = b.add_inputs(2);
    let u = b.and(ys[0], ys[1]);
    let z = b.and(u, !ys[0]); // semantically FALSE but a real node
    b.add_po(z);
    b.add_po(Lit::TRUE);
    let m = miter(&a, &b).unwrap();
    let r = sim_sweep(&m, &exec(), &EngineConfig::default());
    assert_eq!(r.verdict, Verdict::Equivalent);
}

#[test]
fn circuits_that_differ_only_on_one_pattern() {
    // f = AND of 14 inputs vs constant false: differ on exactly one of
    // 16384 assignments; random simulation essentially never finds it,
    // exhaustive PO checking must.
    let n = 14;
    let mut a = Aig::new();
    let xs = a.add_inputs(n);
    let f = a.and_all(xs.iter().copied());
    a.add_po(f);
    let mut b = Aig::new();
    b.add_inputs(n);
    b.add_po(Lit::FALSE);
    let m = miter(&a, &b).unwrap();
    match sim_sweep(&m, &exec(), &EngineConfig::default()).verdict {
        Verdict::NotEquivalent(cex) => {
            assert!(cex.fires(&m));
            assert!(cex.inputs().iter().all(|&x| x), "only all-ones fires");
        }
        other => panic!("expected disproof, got {other:?}"),
    }
}

#[test]
fn aiger_rejects_malformed_inputs() {
    for bad in [
        "",                             // empty
        "aag",                          // truncated header
        "aag 1 1 0 0 0",                // missing input line
        "aag 1 0 1 0 0\n2 3\n",         // latches
        "aig 2 1 0 0 1\n",              // truncated binary section
        "nonsense 0 0 0 0 0",           // bad magic
        "aag 2 1 0 1 1\n2\n4\nx y z\n", // garbage AND line
    ] {
        assert!(
            aiger::read_aiger(bad.as_bytes()).is_err(),
            "input {bad:?} should be rejected"
        );
    }
}

#[test]
fn optimizers_handle_degenerate_networks() {
    // Constant-only network.
    let mut a = Aig::new();
    a.add_inputs(1);
    a.add_po(Lit::FALSE);
    a.add_po(Lit::TRUE);
    let opt = resyn2(&a);
    assert_eq!(opt.pos(), a.pos());

    // Pure wire network.
    let mut w = Aig::new();
    let xs = w.add_inputs(3);
    for &x in &xs {
        w.add_po(!x);
    }
    let optw = balance(&w);
    assert_eq!(optw.num_ands(), 0);
    for v in 0..8u32 {
        let bits = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
        assert_eq!(w.eval(&bits), optw.eval(&bits));
    }

    // Single gate.
    let mut g = Aig::new();
    let ys = g.add_inputs(2);
    let f = g.and(ys[0], ys[1]);
    g.add_po(f);
    let optg = rewrite(&g, RewriteParams::rewrite());
    assert_eq!(optg.num_ands(), 1);
}

#[test]
fn deep_chain_does_not_overflow_recursion() {
    // 20k-node chain: everything must be iterative, not recursive.
    let mut a = Aig::new();
    let xs = a.add_inputs(2);
    let mut acc = xs[0];
    for i in 0..20_000 {
        let other = if i % 2 == 0 { xs[1] } else { !xs[1] };
        acc = a.xor(acc, other);
    }
    a.add_po(acc);
    let m = miter(&a, &a.clean()).unwrap();
    let cfg = EngineConfig {
        max_local_phases: 2,
        ..EngineConfig::default()
    };
    let r = sim_sweep(&m, &exec(), &cfg);
    // Deep chains strash heavily; whatever the verdict, no stack overflow
    // and no wrong disproof.
    assert!(!matches!(r.verdict, Verdict::NotEquivalent(_)));
}

#[test]
fn combined_flow_on_wide_interface() {
    // 600 PIs / 300 POs of tiny functions: stresses interface handling,
    // not logic depth.
    let mut a = Aig::new();
    let mut b = Aig::new();
    for _ in 0..300 {
        let xa = a.add_inputs(2);
        let fa = a.and(xa[0], xa[1]);
        a.add_po(fa);
        let xb = b.add_inputs(2);
        let fb = b.or(!xb[0], !xb[1]);
        b.add_po(!fb);
    }
    let m = miter(&a, &b).unwrap();
    let r = combined_check(&m, &exec(), &CombinedConfig::default());
    assert_eq!(r.verdict, Verdict::Equivalent);
}

#[test]
fn engine_stats_are_internally_consistent() {
    let a = parsweep::aig::random::random_aig(8, 200, 4, 3);
    let b = resyn2(&a);
    let m = miter(&a, &b).unwrap();
    let r = sim_sweep(&m, &exec(), &EngineConfig::default());
    let t = r.stats.phase_times;
    assert!(t.po >= 0.0 && t.global >= 0.0 && t.local >= 0.0 && t.other >= 0.0);
    assert!(t.total() <= r.stats.seconds + 1e-6);
    assert!(r.stats.final_ands <= r.stats.initial_ands);
    if r.verdict.is_equivalent() {
        assert_eq!(r.stats.final_ands, 0);
        assert_eq!(r.stats.reduction_pct(), 100.0);
    }
}

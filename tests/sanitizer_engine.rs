//! The full sweeping engine runs clean under the kernel sanitizer, and a
//! sanitized run produces exactly the results of an uninstrumented run.

use parsweep::aig::miter;
use parsweep::engine::{sim_sweep, EngineConfig, Verdict};
use parsweep::par::Executor;
use parsweep::synth::resyn2;
use parsweep_bench::gen::gen_multiplier;

#[test]
fn engine_is_race_free_and_deterministic_under_sanitizer() {
    let base = gen_multiplier(3);
    let optimized = resyn2(&base);
    let miter = miter(&base, &optimized).unwrap();
    let cfg = EngineConfig::default();

    let raw_exec = Executor::with_threads(2);
    let raw = sim_sweep(&miter, &raw_exec, &cfg);

    let san_exec = Executor::with_sanitizer(2);
    let san = sim_sweep(&miter, &san_exec, &cfg);

    // Fail-fast is on: any hazard inside the engine kernels would have
    // panicked the sanitized run. Double-check no reports accumulated.
    assert!(san_exec.take_reports().is_empty());

    assert_eq!(raw.verdict, Verdict::Equivalent);
    assert_eq!(raw.verdict, san.verdict);
    assert_eq!(raw.stats.proved_pairs, san.stats.proved_pairs);
    assert_eq!(raw.stats.common_cuts, san.stats.common_cuts);
    // Identical launch structure: the sanitizer only serializes, it never
    // changes what is launched.
    assert_eq!(raw_exec.stats().launches, san_exec.stats().launches);
    assert_eq!(
        raw_exec.stats().total_threads,
        san_exec.stats().total_threads
    );
}

#[test]
fn inequivalent_miter_verdicts_agree_under_sanitizer() {
    // Perturb one PO of a multiplier so the designs differ.
    let mut left = gen_multiplier(2);
    let right = gen_multiplier(2);
    let po = left.pos()[0];
    left.set_po(0, !po);
    let miter = miter(&left, &right).unwrap();

    let cfg = EngineConfig::default();
    let raw = sim_sweep(&miter, &Executor::with_threads(2), &cfg);
    let san_exec = Executor::with_sanitizer(2);
    let san = sim_sweep(&miter, &san_exec, &cfg);

    assert!(san_exec.take_reports().is_empty());
    assert!(matches!(raw.verdict, Verdict::NotEquivalent(_)));
    match (&raw.verdict, &san.verdict) {
        (Verdict::NotEquivalent(a), Verdict::NotEquivalent(b)) => assert_eq!(a, b),
        other => panic!("verdicts diverged under sanitizer: {other:?}"),
    }
}

//! End-to-end integration tests across all workspace crates: generate a
//! design, optimize it, write/read AIGER, miter, and check with every
//! engine.

use parsweep::aig::{aiger, is_proved, miter, Aig, Lit};
use parsweep::engine::{combined_check, sim_sweep, CombinedConfig, EngineConfig, Verdict};
use parsweep::par::Executor;
use parsweep::sat::{portfolio_check, sat_sweep, PortfolioConfig, SweepConfig};
use parsweep::synth::resyn2;

fn exec() -> Executor {
    Executor::with_threads(1)
}

/// A small barrel shifter: out = x rotated left by s.
fn rotator(bits: usize, sel: usize) -> Aig {
    let mut aig = Aig::new();
    let x = aig.add_inputs(bits);
    let s = aig.add_inputs(sel);
    let mut stage: Vec<Lit> = x.clone();
    for (k, &sk) in s.iter().enumerate() {
        let shift = 1usize << k;
        let mut next = Vec::with_capacity(bits);
        for i in 0..bits {
            let rotated = stage[(i + bits - shift % bits) % bits];
            next.push(aig.mux(sk, rotated, stage[i]));
        }
        stage = next;
    }
    for bit in stage {
        aig.add_po(bit);
    }
    aig
}

#[test]
fn optimize_and_verify_rotator_with_all_engines() {
    let original = rotator(8, 3);
    let optimized = resyn2(&original);
    assert_ne!(original.num_ands(), 0, "rotator must contain logic");
    let m = miter(&original, &optimized).unwrap();

    let sim = sim_sweep(&m, &exec(), &EngineConfig::default());
    assert_eq!(sim.verdict, Verdict::Equivalent, "sim engine");

    let sat = sat_sweep(&m, &exec(), &SweepConfig::default());
    assert_eq!(sat.verdict, Verdict::Equivalent, "sat sweeping");

    let pfl = portfolio_check(&m, &exec(), &PortfolioConfig::default());
    assert!(pfl.verdict.is_equivalent(), "portfolio");

    let comb = combined_check(&m, &exec(), &CombinedConfig::default());
    assert_eq!(comb.verdict, Verdict::Equivalent, "combined");
}

#[test]
fn aiger_file_roundtrip_through_the_full_flow() {
    let original = rotator(6, 2);
    let optimized = resyn2(&original);
    let dir = std::env::temp_dir();
    let p1 = dir.join("parsweep_it_left.aag");
    let p2 = dir.join("parsweep_it_right.aig");
    aiger::write_aiger_file(&original, &p1).unwrap();
    aiger::write_aiger_file(&optimized, &p2).unwrap();
    let left = aiger::read_aiger_file(&p1).unwrap();
    let right = aiger::read_aiger_file(&p2).unwrap();
    let m = miter(&left, &right).unwrap();
    let r = sim_sweep(&m, &exec(), &EngineConfig::default());
    assert_eq!(r.verdict, Verdict::Equivalent);
    let _ = std::fs::remove_file(p1);
    let _ = std::fs::remove_file(p2);
}

#[test]
fn injected_bug_is_caught_with_a_real_witness() {
    let good = rotator(8, 3);
    // Inject a subtle bug: complement one PO driver deep in the list.
    let mut bad = rotator(8, 3);
    let po = bad.po(5);
    bad.set_po(5, !po);
    let m = miter(&good, &bad).unwrap();

    for (name, verdict) in [
        (
            "sim",
            sim_sweep(&m, &exec(), &EngineConfig::default()).verdict,
        ),
        (
            "sat",
            sat_sweep(&m, &exec(), &SweepConfig::default()).verdict,
        ),
        (
            "combined",
            combined_check(&m, &exec(), &CombinedConfig::default()).verdict,
        ),
    ] {
        match verdict {
            Verdict::NotEquivalent(cex) => {
                assert!(cex.fires(&m), "{name}: counter-example must fire the miter");
            }
            other => panic!("{name}: expected NotEquivalent, got {other:?}"),
        }
    }
}

#[test]
fn doubling_scales_all_engines_consistently() {
    let base = rotator(6, 2);
    let opt = resyn2(&base);
    let m = miter(&base.double_times(2), &opt.double_times(2)).unwrap();
    assert_eq!(m.num_pis(), 4 * (6 + 2));
    let r = combined_check(&m, &exec(), &CombinedConfig::default());
    assert_eq!(r.verdict, Verdict::Equivalent);
}

#[test]
fn engine_reduction_preserves_miter_semantics() {
    // Run the engine with a crippled budget so it stops early, then
    // confirm the reduced miter is semantically the same as the original.
    let original = rotator(8, 3);
    let optimized = resyn2(&original);
    let m = miter(&original, &optimized).unwrap();
    let cfg = EngineConfig {
        max_local_phases: 1,
        k_g: 4,
        k_po_all: 4,
        k_po: 4,
        ..EngineConfig::default()
    };
    let r = sim_sweep(&m, &exec(), &cfg);
    if !is_proved(&r.reduced) {
        let mut rng = parsweep::aig::random::SplitMix64::new(77);
        for _ in 0..128 {
            let bits: Vec<bool> = (0..m.num_pis()).map(|_| rng.bool()).collect();
            let orig = m.eval(&bits).iter().any(|&x| x);
            let red = r.reduced.eval(&bits).iter().any(|&x| x);
            assert_eq!(orig, red);
        }
    }
}

#[test]
fn undecided_engine_result_is_finished_by_sat() {
    let original = rotator(10, 3);
    let optimized = resyn2(&original);
    let m = miter(&original, &optimized).unwrap();
    let mut cfg = CombinedConfig::default();
    // Handicap the engine into leaving work for SAT (field-by-field on
    // the nested config, so struct-update syntax does not apply).
    cfg.engine.k_po_all = 3;
    cfg.engine.k_po = 3;
    cfg.engine.k_g = 3;
    cfg.engine.max_local_phases = 1;
    cfg.engine.cut = parsweep::cut::CutParams { k_l: 3, c: 2 };
    let r = combined_check(&m, &exec(), &cfg);
    assert_eq!(r.verdict, Verdict::Equivalent);
}

//! Cross-engine agreement: the simulation engine, SAT sweeping and the
//! portfolio must never contradict each other on the same miter.

use parsweep::aig::{miter, random::random_aig};
use parsweep::engine::{sim_sweep, EngineConfig, Verdict};
use parsweep::par::Executor;
use parsweep::sat::{sat_sweep, SweepConfig};
use parsweep::synth::resyn_light;

fn exec() -> Executor {
    Executor::with_threads(1)
}

fn agree(v1: &Verdict, v2: &Verdict) -> bool {
    !matches!(
        (v1, v2),
        (Verdict::Equivalent, Verdict::NotEquivalent(_))
            | (Verdict::NotEquivalent(_), Verdict::Equivalent)
    )
}

#[test]
fn random_equivalent_pairs_agree() {
    for seed in 0..12u64 {
        let a = random_aig(7, 70, 3, seed);
        let b = resyn_light(&a);
        let m = miter(&a, &b).unwrap();
        let sim = sim_sweep(&m, &exec(), &EngineConfig::default()).verdict;
        let sat = sat_sweep(&m, &exec(), &SweepConfig::default()).verdict;
        assert!(agree(&sim, &sat), "seed {seed}: sim {sim:?} vs sat {sat:?}");
        // Optimized pairs are equivalent by construction, so neither
        // engine may disprove.
        assert!(!matches!(sim, Verdict::NotEquivalent(_)), "seed {seed}");
        assert!(!matches!(sat, Verdict::NotEquivalent(_)), "seed {seed}");
    }
}

#[test]
fn random_unrelated_pairs_agree() {
    // Two unrelated random networks are (with overwhelming probability)
    // inequivalent; both engines must find and validate a witness.
    for seed in 0..8u64 {
        let a = random_aig(7, 60, 2, seed);
        let b = random_aig(7, 60, 2, seed + 1000);
        let m = miter(&a, &b).unwrap();
        let sim = sim_sweep(&m, &exec(), &EngineConfig::default()).verdict;
        let sat = sat_sweep(&m, &exec(), &SweepConfig::default()).verdict;
        assert!(agree(&sim, &sat), "seed {seed}");
        if let Verdict::NotEquivalent(cex) = &sim {
            assert!(cex.fires(&m), "seed {seed}: sim witness must fire");
        }
        if let Verdict::NotEquivalent(cex) = &sat {
            assert!(cex.fires(&m), "seed {seed}: sat witness must fire");
        }
    }
}

#[test]
fn single_bit_mutations_are_caught() {
    // Flip one PO polarity; every engine must catch it.
    for seed in [5u64, 15, 25] {
        let a = random_aig(6, 50, 3, seed);
        let mut b = a.clone();
        let po = b.po(1);
        b.set_po(1, !po);
        let m = miter(&a, &b).unwrap();
        // The mutated PO differs everywhere, so even pure simulation
        // disproves instantly.
        let sim = sim_sweep(&m, &exec(), &EngineConfig::default()).verdict;
        assert!(matches!(sim, Verdict::NotEquivalent(_)), "seed {seed}");
        let sat = sat_sweep(&m, &exec(), &SweepConfig::default()).verdict;
        assert!(matches!(sat, Verdict::NotEquivalent(_)), "seed {seed}");
    }
}
